/**
 * @file
 * Integration and failure-injection tests: overload, ring
 * exhaustion, drops + recovery, idle-domain churn, and end-to-end
 * conservation under stress — the conditions the application
 * benchmarks create implicitly, exercised explicitly.
 */

#include <gtest/gtest.h>

#include "core/microbench.hh"
#include "core/netperf.hh"
#include "core/testbed.hh"
#include "core/workloads/workload.hh"

using namespace virtsim;

TEST(FailureInjection, XenRxRingExhaustionDropsButSurvives)
{
    // Flood far faster than netback drains with a tiny burst spacing:
    // drops must be counted, and the system must still deliver a
    // sustained stream afterwards.
    Testbed tb(TestbedConfig{.kind = SutKind::XenArm});
    std::uint64_t delivered = 0;
    tb.onVmRx = [&](Cycles, const Packet &pkt) {
        delivered += framesFor(pkt.bytes);
    };
    // Burst: 600 frames back to back (over ring + backlog capacity).
    for (int i = 0; i < 600; ++i) {
        Packet p;
        p.flow = 1;
        p.bytes = 1500;
        tb.clientSend(static_cast<Cycles>(i) * 100, p);
    }
    tb.run();
    const std::uint64_t dropped =
        tb.machine().stats().counterValue("netback.rx_no_request") +
        tb.machine().stats().counterValue(
            "netback.rx_backlog_dropped") +
        tb.machine().stats().counterValue("nic.rx_dropped");
    EXPECT_EQ(delivered + dropped, 600u);
    EXPECT_GT(delivered, 0u);

    // After the burst the path still works.
    delivered = 0;
    Packet late;
    late.flow = 2;
    late.bytes = 1500;
    tb.clientSend(tb.queue().now() + 10000000, late);
    tb.run();
    EXPECT_EQ(delivered, 1u);
}

TEST(FailureInjection, KvmTxBackpressureDrainsEventually)
{
    // Post more frames than the virtio tx ring holds: the driver
    // backlog must absorb and drain them all.
    Testbed tb(TestbedConfig{.kind = SutKind::KvmArm});
    Vcpu &v = tb.guest()->vcpu(0);
    int completions = 0;
    const int n = 400; // ring capacity is 256
    for (int i = 0; i < n; ++i) {
        Packet p;
        p.flow = 1;
        p.bytes = 1500;
        p.seq = static_cast<std::uint64_t>(i + 1);
        tb.hypervisor()->guestTransmit(0, v, p,
                                       [&](Cycles) { ++completions; });
    }
    tb.run();
    EXPECT_EQ(completions, n);
    EXPECT_GT(tb.machine().stats().counterValue(
                  "kvm.tx_backpressure"),
              0u);
    EXPECT_EQ(tb.machine().stats().counterValue("nic.tx_packets"),
              static_cast<std::uint64_t>(n));
}

TEST(FailureInjection, XenTxBackpressureDrainsEventually)
{
    Testbed tb(TestbedConfig{.kind = SutKind::XenArm});
    Vcpu &v = tb.guest()->vcpu(0);
    int completions = 0;
    const int n = 400;
    for (int i = 0; i < n; ++i) {
        Packet p;
        p.flow = 1;
        p.bytes = 1500;
        p.seq = static_cast<std::uint64_t>(i + 1);
        tb.hypervisor()->guestTransmit(0, v, p,
                                       [&](Cycles) { ++completions; });
    }
    tb.run();
    EXPECT_EQ(completions, n);
    // Grant bookkeeping balanced: everything granted was released.
    auto *xen = dynamic_cast<XenArm *>(tb.hypervisor());
    ASSERT_NE(xen, nullptr);
    // 256 rx prefill grants remain; all tx grants were ended.
    EXPECT_EQ(xen->netback()->grantTable().activeGrants(), 256u);
}

TEST(Integration, StreamConservationUnderOverload)
{
    // Frames in == frames delivered + frames dropped, even when the
    // backend is the bottleneck and drops are heavy.
    Testbed tb(TestbedConfig{.kind = SutKind::XenArm});
    NetperfStreamConfig cfg;
    cfg.windowSeconds = 0.02;
    const NetperfStreamResult r = runNetperfStream(tb, cfg);
    const std::uint64_t sent =
        tb.machine().stats().counterValue("wire.to_server");
    EXPECT_GT(r.framesDropped, 0u); // genuinely overloaded
    // Delivered bytes are whole frames of the same size, and the
    // accounting never invents frames (late deliveries past the
    // measurement window are intentionally uncounted).
    EXPECT_EQ(r.bytesDelivered % 1500, 0u);
    EXPECT_LE(r.bytesDelivered / 1500 + r.framesDropped, sent);
}

TEST(Integration, Dom0IdleChurnIsBoundedUnderLoad)
{
    // Under a steady stream, Dom0 must stay resident instead of
    // bouncing through the idle domain on every packet.
    Testbed tb(TestbedConfig{.kind = SutKind::XenArm});
    NetperfStreamConfig cfg;
    cfg.windowSeconds = 0.004;
    (void)runNetperfStream(tb, cfg);
    const std::uint64_t switches = tb.machine().stats().counterValue(
        "xen.idle_domain_switches");
    const std::uint64_t frames =
        tb.machine().stats().counterValue("nic.rx_packets");
    EXPECT_LT(switches * 20, frames);
}

TEST(Integration, RrTimestampsAreCausallyOrdered)
{
    // The Table V invariant the analysis depends on, for every
    // transaction, on every ARM configuration.
    for (SutKind k : {SutKind::Native, SutKind::KvmArm,
                      SutKind::XenArm, SutKind::KvmArmVhe}) {
        Testbed tb(TestbedConfig{.kind = k});
        NetperfRrConfig cfg;
        cfg.transactions = 30;
        const NetperfRrResult r = runNetperfRr(tb, cfg);
        // runNetperfRr asserts per-transaction ordering internally;
        // here check the aggregate identities.
        EXPECT_GT(r.transPerSec, 0.0) << to_string(k);
        EXPECT_NEAR(r.timePerTransUs,
                    r.sendToRecvUs + r.recvToSendUs,
                    r.timePerTransUs * 0.05)
            << to_string(k);
    }
}

TEST(Integration, RequestResponseEngineSurvivesTinyWindows)
{
    // Degenerate configuration: minimal concurrency and window.
    Testbed tb(TestbedConfig{.kind = SutKind::KvmArm});
    ServerAppParams p;
    p.concurrency = 2;
    p.requestBytes = 300;
    p.responseBytes = 800;
    p.appWorkUs = 5.0;
    p.windowSeconds = 0.002;
    p.clientThinkUs = 5.0;
    const double rate = runRequestResponse(tb, p);
    EXPECT_GT(rate, 0.0);
}

TEST(Integration, VheBeatsSplitModeOnEveryMicrobenchmark)
{
    Testbed split(TestbedConfig{.kind = SutKind::KvmArm});
    Testbed vhe(TestbedConfig{.kind = SutKind::KvmArmVhe});
    MicrobenchSuite s1(split), s2(vhe);
    for (MicroOp op : allMicroOps) {
        const double a = s1.run(op, 5).cycles.mean();
        const double b = s2.run(op, 5).cycles.mean();
        EXPECT_LE(b, a) << to_string(op);
    }
}

TEST(Integration, SeedChangesWorkloadButNotMicrobenchResults)
{
    // Microbenchmarks are deterministic paths (no PRNG); workloads
    // draw jitter from the seed. Both must be reproducible.
    TestbedConfig a;
    a.kind = SutKind::KvmArm;
    a.seed = 1;
    TestbedConfig b = a;
    b.seed = 2;
    Testbed ta(a), tb2(b);
    MicrobenchSuite sa(ta), sb(tb2);
    EXPECT_DOUBLE_EQ(sa.run(MicroOp::Hypercall, 5).cycles.mean(),
                     sb.run(MicroOp::Hypercall, 5).cycles.mean());
}

TEST(Integration, UtilizationNeverExceedsOne)
{
    Testbed tb(TestbedConfig{.kind = SutKind::XenArm});
    NetperfStreamConfig cfg;
    cfg.windowSeconds = 0.003;
    (void)runNetperfStream(tb, cfg);
    // Completion frontier may exceed the last event slightly; measure
    // against each CPU's own frontier.
    for (int c = 0; c < tb.machine().numCpus(); ++c) {
        PhysicalCpu &cpu = tb.machine().cpu(c);
        if (cpu.frontier() == 0)
            continue;
        EXPECT_LE(cpu.busyCycles(), cpu.frontier()) << "cpu " << c;
    }
}
