/**
 * @file
 * Tests for the NIC, wire, memory and machine composition.
 */

#include <gtest/gtest.h>

#include "hw/machine.hh"
#include "hw/wire.hh"
#include "os/kernel.hh"

using namespace virtsim;

namespace {

struct NicFixture : public ::testing::Test
{
    EventQueue eq;
    MachineConfig cfg = MachineConfig::hpMoonshotM400();
    Machine m{eq, cfg};
};

Packet
mkPacket(std::uint64_t flow, std::uint32_t bytes)
{
    Packet p;
    p.flow = flow;
    p.bytes = bytes;
    return p;
}

} // namespace

TEST_F(NicFixture, RxRaisesRoutedIrqAfterDma)
{
    PcpuId cpu = -1;
    Cycles when = 0;
    m.irqChip().routeExternal(spiNicIrq, 3);
    m.irqChip().setPhysIrqHandler([&](Cycles t, PcpuId c, IrqId i) {
        EXPECT_EQ(i, spiNicIrq);
        cpu = c;
        when = t;
    });
    m.nic().receiveFromWire(1000, mkPacket(1, 1500));
    eq.run();
    EXPECT_EQ(cpu, 3);
    EXPECT_EQ(when, 1000 + cfg.nicParams.rxDmaLatency);
    Packet got;
    EXPECT_TRUE(m.nic().popRx(got));
    EXPECT_EQ(got.bytes, 1500u);
    EXPECT_FALSE(m.nic().popRx(got));
}

TEST_F(NicFixture, CoalescingSuppressesBurstIrqs)
{
    int irqs = 0;
    m.irqChip().setPhysIrqHandler(
        [&](Cycles, PcpuId, IrqId) { ++irqs; });
    // A burst well inside one coalescing window: one immediate
    // interrupt plus one end-of-window flush (the queue is never
    // drained by this test's handler).
    for (int i = 0; i < 10; ++i)
        m.nic().receiveFromWire(1000 + static_cast<Cycles>(i) * 100,
                                mkPacket(1, 1500));
    eq.run();
    EXPECT_EQ(irqs, 2);
    EXPECT_EQ(m.nic().rxQueueDepth(), 10u);
    EXPECT_EQ(m.stats().counterValue("nic.rx_coalesced"), 9u);
}

TEST_F(NicFixture, RxQueueCapDrops)
{
    m.irqChip().setPhysIrqHandler([](Cycles, PcpuId, IrqId) {});
    for (std::size_t i = 0; i < cfg.nicParams.rxQueueCap + 50; ++i)
        m.nic().receiveFromWire(static_cast<Cycles>(i), mkPacket(1, 60));
    eq.run();
    EXPECT_EQ(m.stats().counterValue("nic.rx_dropped"), 50u);
}

TEST_F(NicFixture, TxSerializesAtLineRate)
{
    std::vector<Cycles> tx_times;
    m.nic().onWireTx = [&](Cycles t, const Packet &) {
        tx_times.push_back(t);
    };
    // Two full-size frames posted at the same instant must leave the
    // wire one serialization delay apart.
    m.nic().transmit(0, mkPacket(1, 1500));
    m.nic().transmit(0, mkPacket(1, 1500));
    eq.run();
    ASSERT_EQ(tx_times.size(), 2u);
    const Cycles ser = m.nic().serializationDelay(1500);
    EXPECT_EQ(tx_times[1] - tx_times[0], ser);
    // 1500 B at 10 Gbps = 1.2 us = 2880 cycles at 2.4 GHz.
    EXPECT_EQ(ser, 2880u);
}

TEST(Wire, DeliversBothDirectionsWithLatency)
{
    EventQueue eq;
    StatRegistry stats;
    Wire wire(eq, stats, 1000);
    Cycles server_at = 0, client_at = 0;
    wire.setServerEndpoint(
        [&](Cycles t, const Packet &) { server_at = t; });
    wire.setClientEndpoint(
        [&](Cycles t, const Packet &) { client_at = t; });
    Packet p;
    wire.sendToServer(100, p);
    wire.sendToClient(200, p);
    eq.run();
    EXPECT_EQ(server_at, 1100u);
    EXPECT_EQ(client_at, 1200u);
}

TEST(MainMemory, OwnershipAndCopyCosts)
{
    CostModel cm = CostModel::armAtlas();
    StatRegistry stats;
    MainMemory mem(cm, stats);
    const BufferId b = mem.alloc("vm0", 4096);
    EXPECT_TRUE(mem.valid(b));
    EXPECT_EQ(mem.owner(b), "vm0");
    EXPECT_EQ(mem.size(b), 4096u);
    EXPECT_EQ(mem.copyCost(4096), 4 * cm.copyPerKb);
    EXPECT_EQ(mem.copyCost(1), cm.copyPerKb); // setup floor
    mem.free(b);
    EXPECT_FALSE(mem.valid(b));
    EXPECT_EQ(stats.counterValue("mem.copies"), 2u);
}

TEST(MainMemoryDeath, DoubleFreePanics)
{
    CostModel cm = CostModel::armAtlas();
    StatRegistry stats;
    MainMemory mem(cm, stats);
    const BufferId b = mem.alloc("host", 64);
    mem.free(b);
    EXPECT_DEATH(mem.free(b), "double free");
}

TEST(Machine, TestbedFactoriesMatchSectionIII)
{
    EventQueue eq;
    Machine arm(eq, MachineConfig::hpMoonshotM400());
    EXPECT_EQ(arm.arch(), Arch::Arm);
    EXPECT_EQ(arm.numCpus(), 8);
    EXPECT_EQ(arm.config().ramGib, 64);
    EXPECT_DOUBLE_EQ(arm.freq().ghz(), 2.4);
    (void)arm.gic(); // must not panic

    EventQueue eq2;
    Machine x86(eq2, MachineConfig::dellR320());
    EXPECT_EQ(x86.arch(), Arch::X86);
    EXPECT_EQ(x86.numCpus(), 8); // hyperthreading disabled
    EXPECT_EQ(x86.config().ramGib, 16);
    (void)x86.apic();
}

TEST(MachineDeath, WrongIrqChipAccessorPanics)
{
    EventQueue eq;
    Machine arm(eq, MachineConfig::hpMoonshotM400());
    EXPECT_DEATH((void)arm.apic(), "apic\\(\\) on non-x86");
}

TEST(KernelHelpers, FramesForAndTsoSegments)
{
    EXPECT_EQ(framesFor(0), 1);
    EXPECT_EQ(framesFor(1), 1);
    EXPECT_EQ(framesFor(1500), 1);
    EXPECT_EQ(framesFor(1501), 2);
    EXPECT_EQ(framesFor(41 * 1024), 28);

    const auto segs = tsoSegments(5000, 2048);
    ASSERT_EQ(segs.size(), 3u);
    EXPECT_EQ(segs[0], 2048u);
    EXPECT_EQ(segs[2], 904u);
    EXPECT_EQ(tsoSegments(0, 2048).size(), 1u);
}

TEST(KernelHelpers, GroAggregates)
{
    EXPECT_EQ(groAggregates(21, 21), 1);
    EXPECT_EQ(groAggregates(22, 21), 2);
    EXPECT_EQ(groAggregates(1, 21), 1);
}

TEST(KernelHelpers, GroDrainMergesSameFlowDataOnly)
{
    EventQueue eq;
    Machine m(eq, MachineConfig::hpMoonshotM400());
    m.irqChip().setPhysIrqHandler([](Cycles, PcpuId, IrqId) {});
    // Three same-flow data frames, one tiny ack, one other-flow frame.
    for (int i = 0; i < 3; ++i)
        m.nic().receiveFromWire(0, mkPacket(7, 1500));
    m.nic().receiveFromWire(0, mkPacket(7, 60));
    m.nic().receiveFromWire(0, mkPacket(8, 1500));
    eq.run();
    const auto aggs = groDrain(m.nic(), 21);
    ASSERT_EQ(aggs.size(), 3u);
    EXPECT_EQ(aggs[0].bytes, 4500u); // merged data
    EXPECT_EQ(aggs[1].bytes, 60u);   // ack passes through
    EXPECT_EQ(aggs[2].flow, 8u);
}

/** Property: NIC serialization is linear in bytes at 10 Gbps. */
class NicSerializationTest
    : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(NicSerializationTest, LinearInBytes)
{
    EventQueue eq;
    Machine m(eq, MachineConfig::hpMoonshotM400());
    const std::uint32_t bytes = GetParam();
    const double expected_ns = bytes * 8.0 / 10.0;
    EXPECT_EQ(m.nic().serializationDelay(bytes),
              m.freq().cyclesFromNs(expected_ns));
}

INSTANTIATE_TEST_SUITE_P(Sizes, NicSerializationTest,
                         ::testing::Values(60u, 512u, 1500u, 4096u,
                                           9000u, 65536u));
