/**
 * @file
 * Request-latency observability (sim/latency, sim/slo): histogram
 * bucket math and error bounds, exact merges, lane-partitioned
 * tracking, the zero-allocation stamp path, fleet export determinism
 * across lane counts, SLO breach detection, and the validated env
 * knobs.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <vector>

#include "core/fleet.hh"
#include "core/netperf.hh"
#include "core/testbed.hh"
#include "sim/env.hh"
#include "sim/latency.hh"
#include "sim/random.hh"
#include "sim/slo.hh"
#include "sim/stats.hh"

// ---------------------------------------------------------------------
// Binary-wide allocation counter (the test_probe.cc idiom): the
// latency stamp path must not allocate — one predicted branch when
// disabled, pre-sized bucket increments when enabled.
// ---------------------------------------------------------------------

namespace {

std::atomic<std::uint64_t> g_news{0};

void *
countedAlloc(std::size_t size)
{
    g_news.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

using namespace virtsim;

namespace {

/** Scoped environment override; restores the prior value on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name(name)
    {
        const char *prev = std::getenv(name);
        if (prev)
            saved = prev;
        had = prev != nullptr;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (had)
            ::setenv(name, saved.c_str(), 1);
        else
            ::unsetenv(name);
    }

  private:
    const char *name;
    std::string saved;
    bool had = false;
};

FleetConfig
smallFleet()
{
    FleetConfig cfg;
    cfg.nCpus = 4;
    cfg.connsPerCpu = 8;
    cfg.transactionsPerConn = 40;
    return cfg;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

} // namespace

// ---------------------------------------------------------------------
// Bucket math
// ---------------------------------------------------------------------

TEST(LatencyHistogramBuckets, ExactRegionIsOneBucketPerValue)
{
    for (std::uint64_t v = 0; v < LatencyHistogram::exactLimit; ++v) {
        EXPECT_EQ(LatencyHistogram::bucketOf(v),
                  static_cast<std::size_t>(v));
        EXPECT_EQ(LatencyHistogram::bucketLow(v), v);
        EXPECT_EQ(LatencyHistogram::bucketHigh(v), v);
    }
}

TEST(LatencyHistogramBuckets, BoundsBracketEveryMagnitude)
{
    // Walk values across the full 64-bit range: each must land in a
    // bucket whose [low, high] range contains it, with relative width
    // under 2^-subBucketBits (the advertised quantile error bound).
    for (std::uint64_t v = 1; v != 0 && v < (UINT64_MAX / 3); v *= 3) {
        for (std::uint64_t d : {std::uint64_t{0}, v / 7, v / 2}) {
            const std::uint64_t s = v + d;
            const std::size_t i = LatencyHistogram::bucketOf(s);
            ASSERT_LT(i, LatencyHistogram::numBuckets);
            const std::uint64_t lo = LatencyHistogram::bucketLow(i);
            const std::uint64_t hi = LatencyHistogram::bucketHigh(i);
            ASSERT_LE(lo, s);
            ASSERT_GE(hi, s);
            // Integer compare (doubles lose integer precision up
            // here); the saturating top bucket is exempt by design.
            if (s >= LatencyHistogram::exactLimit &&
                hi != UINT64_MAX) {
                EXPECT_LT(hi - lo,
                          lo / LatencyHistogram::subBuckets);
            }
        }
    }
    // The top bucket saturates instead of overflowing.
    const std::size_t top = LatencyHistogram::bucketOf(UINT64_MAX);
    ASSERT_LT(top, LatencyHistogram::numBuckets);
    EXPECT_EQ(LatencyHistogram::bucketHigh(top), UINT64_MAX);
}

TEST(LatencyHistogramBuckets, BucketIndexIsMonotone)
{
    std::size_t prev = 0;
    for (std::uint64_t v = 1; v < (std::uint64_t{1} << 40); v *= 2) {
        for (std::uint64_t s : {v, v + v / 3}) {
            const std::size_t i = LatencyHistogram::bucketOf(s);
            EXPECT_GE(i, prev);
            prev = i;
        }
    }
}

// ---------------------------------------------------------------------
// Quantile accuracy against an exact reference
// ---------------------------------------------------------------------

TEST(LatencyHistogramQuantiles, WithinRelativeErrorOfExact)
{
    // Same stream into the exact-but-unbounded SampleStat world
    // (nearest-rank reference) and the bounded histogram; the
    // histogram's quantiles must stay within the 2^-7 relative error
    // bound at every magnitude.
    Random rng(1234);
    LatencyHistogram h;
    std::vector<std::uint64_t> all;
    for (int i = 0; i < 20000; ++i) {
        // Log-uniform-ish spread: exponential means from 1 us to 1 ms
        // at 2.4 GHz so every octave gets mass.
        const double mean = (i % 3 == 0) ? 2400.0
                            : (i % 3 == 1) ? 240000.0
                                           : 2400000.0;
        const auto v =
            static_cast<std::uint64_t>(rng.exponential(mean)) + 1;
        h.add(v);
        all.push_back(v);
    }
    std::sort(all.begin(), all.end());
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
        const std::size_t rank = static_cast<std::size_t>(
            std::ceil(q * static_cast<double>(all.size())));
        const std::uint64_t exact = all[rank - 1];
        const std::uint64_t approx = h.quantile(q);
        const double tol =
            static_cast<double>(exact) /
                LatencyHistogram::subBuckets +
            1.0;
        EXPECT_NEAR(static_cast<double>(approx),
                    static_cast<double>(exact), tol)
            << "q=" << q;
    }
    // Extrema and moments are exact, not bucket-resolution.
    EXPECT_EQ(h.min(), all.front());
    EXPECT_EQ(h.max(), all.back());
    EXPECT_EQ(h.quantile(0.0), all.front());
    EXPECT_EQ(h.quantile(1.0), all.back());
    std::uint64_t sum = 0;
    for (std::uint64_t v : all)
        sum += v;
    EXPECT_EQ(h.sum(), sum);
    EXPECT_EQ(h.count(), all.size());
}

TEST(LatencyHistogramQuantiles, CountAboveExactInExactRegion)
{
    LatencyHistogram h;
    for (std::uint64_t v = 0; v < 200; ++v)
        h.add(v);
    // Strictly-above semantics, exact below exactLimit.
    EXPECT_EQ(h.countAbove(100), 99u);
    EXPECT_EQ(h.countAbove(0), 199u);
    EXPECT_EQ(h.countAbove(199), 0u);
    EXPECT_EQ(h.countAbove(UINT64_MAX), 0u);
}

// ---------------------------------------------------------------------
// Merge exactness
// ---------------------------------------------------------------------

TEST(LatencyHistogramMerge, ShardedMergeEqualsSerial)
{
    Random rng(99);
    LatencyHistogram serial;
    LatencyHistogram shards[4];
    for (int i = 0; i < 10000; ++i) {
        const auto v =
            static_cast<std::uint64_t>(rng.exponential(50000.0));
        serial.add(v);
        shards[i % 4].add(v);
    }
    LatencyHistogram folded;
    // Fold in non-sequential order: merge is commutative.
    folded.merge(shards[2]);
    folded.merge(shards[0]);
    folded.merge(shards[3]);
    folded.merge(shards[1]);
    EXPECT_EQ(folded.count(), serial.count());
    EXPECT_EQ(folded.sum(), serial.sum());
    EXPECT_EQ(folded.min(), serial.min());
    EXPECT_EQ(folded.max(), serial.max());
    for (std::size_t i = 0; i < LatencyHistogram::numBuckets; ++i)
        ASSERT_EQ(folded.bucketCount(i), serial.bucketCount(i))
            << "bucket " << i;
    for (double q : {0.5, 0.9, 0.99, 0.999})
        EXPECT_EQ(folded.quantile(q), serial.quantile(q));
}

// ---------------------------------------------------------------------
// RequestTracker
// ---------------------------------------------------------------------

TEST(RequestTracker, RecordsPerCpuPerPhaseAndAggregates)
{
    RequestTracker t;
    t.configure(2);
    t.prepareForParallel(3);
    t.enable();
    // Setup-thread records clamp into segment 0; the read side folds
    // all segments, so the numbers must come out regardless.
    t.record(0, LatencyPhase::Rtt, 100);
    t.record(0, LatencyPhase::Rtt, 300);
    t.record(1, LatencyPhase::Rtt, 200);
    t.record(1, LatencyPhase::Service, 40);

    EXPECT_EQ(t.merged(0, LatencyPhase::Rtt).count(), 2u);
    EXPECT_EQ(t.merged(1, LatencyPhase::Rtt).count(), 1u);
    const LatencyHistogram agg = t.aggregate(LatencyPhase::Rtt);
    EXPECT_EQ(agg.count(), 3u);
    EXPECT_EQ(agg.sum(), 600u);
    EXPECT_EQ(t.totalCount(LatencyPhase::Rtt), 3u);
    EXPECT_EQ(t.totalCount(LatencyPhase::Rtt, 1), 1u);
    EXPECT_EQ(t.totalAbove(LatencyPhase::Rtt, 150), 2u);
    // Streaming quantile == materialized aggregate quantile.
    for (double q : {0.5, 0.99})
        EXPECT_EQ(t.quantileAcross(LatencyPhase::Rtt, q),
                  agg.quantile(q));

    // reset() zeroes data but keeps configuration and arming.
    t.reset();
    EXPECT_TRUE(t.enabled());
    EXPECT_EQ(t.cpus(), 2);
    EXPECT_EQ(t.totalCount(LatencyPhase::Rtt), 0u);

    // clear() drops everything.
    t.clear();
    EXPECT_FALSE(t.enabled());
    EXPECT_EQ(t.cpus(), 0);
}

TEST(RequestTrackerFastPath, DisabledStampAllocatesNothing)
{
    RequestTracker t;
    t.configure(4);
    ASSERT_FALSE(t.enabled());
    const std::uint64_t before = g_news.load();
    for (int i = 0; i < 10000; ++i)
        t.record(i & 3, LatencyPhase::Rtt,
                 static_cast<Cycles>(i) * 97);
    EXPECT_EQ(g_news.load(), before);
}

TEST(RequestTrackerFastPath, EnabledStampAllocatesNothing)
{
    // configure() pays the storage up front; stamping afterwards is
    // pre-sized bucket increments only.
    RequestTracker t;
    t.configure(4);
    t.prepareForParallel(2);
    t.enable();
    const std::uint64_t before = g_news.load();
    for (int i = 0; i < 10000; ++i)
        t.record(i & 3,
                 static_cast<LatencyPhase>(i % numLatencyPhases),
                 static_cast<Cycles>(i) * 1337);
    EXPECT_EQ(g_news.load(), before);
}

// ---------------------------------------------------------------------
// SLO engine
// ---------------------------------------------------------------------

TEST(SloEngine, JudgesQuantileAndFraction)
{
    RequestTracker t;
    t.configure(1);
    t.enable();
    // 99 fast requests, 1 slow one: p99 lands on the fast mass.
    for (int i = 0; i < 99; ++i)
        t.record(0, LatencyPhase::Rtt, 100);
    t.record(0, LatencyPhase::Rtt, 10000);

    SloEngine eng;
    SloSpec spec;
    spec.name = "rtt_p99";
    spec.quantile = 0.99;
    spec.thresholdCycles = 150;
    spec.maxViolationFraction = 0.02; // 1/100 tolerated
    eng.addSpec(spec);
    eng.bind(&t);

    auto verdicts = eng.judge();
    ASSERT_EQ(verdicts.size(), 1u);
    EXPECT_EQ(verdicts[0].requests, 100u);
    EXPECT_EQ(verdicts[0].violations, 1u);
    EXPECT_TRUE(verdicts[0].pass());
    EXPECT_EQ(eng.breaches(), 0u);

    // Shrink the tolerated fraction: same data now breaches.
    SloEngine strict;
    spec.name = "rtt_strict";
    spec.maxViolationFraction = 0.0;
    strict.addSpec(spec);
    strict.bind(&t);
    EXPECT_EQ(strict.breaches(), 1u);
    const auto v = strict.judge();
    EXPECT_FALSE(v[0].fractionOk());
    EXPECT_TRUE(v[0].quantileOk());
}

TEST(SloEngine, VerdictsJsonWellFormed)
{
    RequestTracker t;
    t.configure(1);
    t.enable();
    t.record(0, LatencyPhase::Rtt, 500);
    SloEngine eng;
    SloSpec spec;
    spec.thresholdCycles = 100;
    eng.addSpec(spec);
    eng.bind(&t);
    const std::string json = eng.verdictsJson(Frequency(2.4));
    EXPECT_NE(json.find("\"name\":\"rtt_p99\""), std::string::npos);
    EXPECT_NE(json.find("\"pass\":false"), std::string::npos);
    EXPECT_NE(json.find("\"requests\":1"), std::string::npos);
}

// ---------------------------------------------------------------------
// Fleet integration: export determinism and SLO breaches
// ---------------------------------------------------------------------

TEST(FleetLatencyExport, ByteIdenticalAcrossLaneCounts)
{
    const std::string base =
        ::testing::TempDir() + "test_latency_fleet.json";
    // The fleet inserts ".fleet" before the extension.
    const std::string path =
        ::testing::TempDir() + "test_latency_fleet.fleet.json";
    ScopedEnv e("VIRTSIM_LATENCY", base.c_str());
    const FleetConfig cfg = smallFleet();

    FleetResult serial = runNetperfRrFleet(cfg, 1);
    const std::string ref = slurp(path);
    ASSERT_FALSE(ref.empty());
    EXPECT_NE(ref.find("virtsim-latency-1"), std::string::npos);
    EXPECT_NE(ref.find("\"name\":\"rtt_p99\""), std::string::npos);
    // The nominal fleet meets the default objective.
    EXPECT_NE(ref.find("\"pass\":true"), std::string::npos);
    EXPECT_EQ(serial.sloBreaches, 0u);
    EXPECT_EQ(serial.anomalies, 0u);

    for (int lanes : {2, 8}) {
        std::remove(path.c_str());
        const FleetResult r = runNetperfRrFleet(cfg, lanes);
        EXPECT_TRUE(serial.sameModelledResult(r))
            << "lanes=" << lanes;
        EXPECT_EQ(slurp(path), ref) << "lanes=" << lanes;
    }
    std::remove(path.c_str());
}

TEST(FleetSlo, OverloadTripsBreachAndAnomaly)
{
    // Open-loop arrivals far beyond per-CPU service capacity: queues
    // grow without bound, the RTT tail explodes past the objective,
    // burn windows violate, and the watchdog rule turns the burn
    // gauge into a named anomaly.
    FleetConfig cfg = smallFleet();
    cfg.transactionsPerConn = 60;
    cfg.latency = true;
    cfg.openLoop = true;
    cfg.meanInterarrivalUs = 20.0;
    SloSpec spec;
    spec.name = "rtt_p99";
    spec.thresholdCycles = 240000; // 100 us at 2.4 GHz
    spec.maxViolationFraction = 0.01;
    spec.burnWindow = 2400000; // 1 ms windows
    cfg.slos.push_back(spec);

    const FleetResult r = runNetperfRrFleet(cfg, 2);
    EXPECT_GE(r.sloBreaches, 1u);
    EXPECT_GE(r.anomalies, 1u);

    // Determinism holds under overload too (breach counts included:
    // sameModelledResult compares them).
    const FleetResult r2 = runNetperfRrFleet(cfg, 1);
    EXPECT_TRUE(r.sameModelledResult(r2));
}

// ---------------------------------------------------------------------
// Testbed integration
// ---------------------------------------------------------------------

TEST(TestbedLatency, NetperfMeetsDefaultObjective)
{
    TestbedConfig tc;
    tc.kind = SutKind::KvmArm;
    Testbed tb(tc);
    tb.enableLatency();
    runNetperfRr(tb);
    EXPECT_GT(
        tb.latency().totalCount(LatencyPhase::Rtt), 0u);
    EXPECT_GT(
        tb.latency().totalCount(LatencyPhase::WireFlight), 0u);
    // Paper-config round trips sit far below the 500 us default.
    EXPECT_EQ(tb.sloBreaches(), 0u);
    // RTT decomposition: wire + queue + service legs never exceed
    // the measured round trip.
    const Frequency f = tb.freq();
    const double rtt =
        tb.latency().aggregate(LatencyPhase::Rtt).mean();
    const double parts =
        tb.latency().aggregate(LatencyPhase::ServerQueue).mean() +
        tb.latency().aggregate(LatencyPhase::Service).mean();
    EXPECT_LT(parts, rtt);
    (void)f;
}

// ---------------------------------------------------------------------
// Env knob validation and the SampleStat ceiling
// ---------------------------------------------------------------------

TEST(LatencyEnvDeath, RejectsGarbageAndOutOfRange)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    {
        ScopedEnv e("VIRTSIM_SLO_P99_US", "banana");
        EXPECT_DEATH((void)envPositiveReal("VIRTSIM_SLO_P99_US"),
                     "must be a positive number");
    }
    {
        ScopedEnv e("VIRTSIM_SLO_P99_US", "-3.5");
        EXPECT_DEATH((void)envPositiveReal("VIRTSIM_SLO_P99_US"),
                     "must be a positive number");
    }
    {
        ScopedEnv e("VIRTSIM_SLO_P99_US", "0");
        EXPECT_DEATH((void)envPositiveReal("VIRTSIM_SLO_P99_US"),
                     "must be positive");
    }
    {
        ScopedEnv e("VIRTSIM_SLO_MAX_VIOLATION", "2.0");
        EXPECT_DEATH(
            (void)envUnitFraction("VIRTSIM_SLO_MAX_VIOLATION"),
            "must be a fraction");
    }
    {
        ScopedEnv e("VIRTSIM_SLO_MAX_VIOLATION", "0.5x");
        EXPECT_DEATH(
            (void)envUnitFraction("VIRTSIM_SLO_MAX_VIOLATION"),
            "must be a fraction");
    }
}

TEST(LatencyEnv, ParsesCleanValues)
{
    {
        ScopedEnv e("VIRTSIM_SLO_P99_US", nullptr);
        EXPECT_FALSE(envPositiveReal("VIRTSIM_SLO_P99_US"));
    }
    {
        ScopedEnv e("VIRTSIM_SLO_P99_US", "123.5");
        const auto v = envPositiveReal("VIRTSIM_SLO_P99_US");
        ASSERT_TRUE(v);
        EXPECT_DOUBLE_EQ(*v, 123.5);
    }
    {
        ScopedEnv e("VIRTSIM_SLO_MAX_VIOLATION", "0");
        const auto v = envUnitFraction("VIRTSIM_SLO_MAX_VIOLATION");
        ASSERT_TRUE(v);
        EXPECT_DOUBLE_EQ(*v, 0.0);
    }
}

TEST(FleetEnvDeath, RejectsGarbageBurstFactor)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    ScopedEnv e("VIRTSIM_FLEET_BURST_FACTOR", "fast");
    FleetConfig cfg = smallFleet();
    EXPECT_DEATH((void)runNetperfRrFleet(cfg, 1),
                 "must be a positive number");
}

TEST(SampleStatDeath, UnboundedFeedHitsTheCeiling)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_DEATH(
        {
            SampleStat s;
            for (std::size_t i = 0; i <= SampleStat::maxSamples;
                 ++i)
                s.add(1.0);
        },
        "bounded-memory LatencyHistogram");
}
