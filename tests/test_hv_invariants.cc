/**
 * @file
 * Cross-hypervisor invariant sweep: properties every hypervisor model
 * must satisfy, parameterized over all five implementations and the
 * relevant operations. These are the contracts the measurement
 * framework relies on.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/microbench.hh"
#include "core/testbed.hh"

using namespace virtsim;

namespace {

const SutKind allHvs[] = {SutKind::KvmArm, SutKind::XenArm,
                          SutKind::KvmX86, SutKind::XenX86,
                          SutKind::KvmArmVhe};

} // namespace

class HvInvariant : public ::testing::TestWithParam<SutKind>
{
};

TEST_P(HvInvariant, HypercallIsPositiveFiniteAndRepeatable)
{
    Testbed tb(TestbedConfig{.kind = GetParam()});
    Hypervisor *hv = tb.hypervisor();
    Vcpu &v = tb.guest()->vcpu(0);
    Cycles first = 0, second = 0;
    hv->hypercall(0, v, [&](Cycles t) {
        first = t;
        hv->hypercall(t, v,
                      [&second, t](Cycles t2) { second = t2 - t; });
    });
    tb.run();
    EXPECT_GT(first, 0u);
    EXPECT_EQ(second, first) << "hypercall cost not stable";
}

TEST_P(HvInvariant, HypercallLeavesVcpuRunning)
{
    Testbed tb(TestbedConfig{.kind = GetParam()});
    Vcpu &v = tb.guest()->vcpu(0);
    tb.hypervisor()->hypercall(0, v, [](Cycles) {});
    tb.run();
    EXPECT_EQ(v.state(), VcpuState::Running);
    EXPECT_TRUE(v.loaded());
}

TEST_P(HvInvariant, IrqTrapCostsMoreThanHypercall)
{
    // The distributor access does everything a hypercall does plus
    // emulation work.
    Testbed tb(TestbedConfig{.kind = GetParam()});
    Vcpu &v = tb.guest()->vcpu(0);
    Cycles hc = 0, trap = 0;
    tb.hypervisor()->hypercall(0, v, [&](Cycles t) {
        hc = t;
        tb.hypervisor()->irqControllerTrap(
            t, v, [&trap, t](Cycles t2) { trap = t2 - t; });
    });
    tb.run();
    EXPECT_GT(trap, hc);
}

TEST_P(HvInvariant, VirtualIpiReachesTheOtherVcpu)
{
    Testbed tb(TestbedConfig{.kind = GetParam()});
    Vcpu &src = tb.guest()->vcpu(0);
    Vcpu &dst = tb.guest()->vcpu(3);
    Cycles handled = 0;
    tb.hypervisor()->virtualIpi(0, src, dst,
                                [&](Cycles t) { handled = t; });
    tb.run();
    EXPECT_GT(handled, 0u);
    // The receiver's physical CPU did work.
    EXPECT_GT(tb.machine().cpu(dst.pcpu()).busyCycles(), 0u);
    // Both ends are back in guest mode.
    EXPECT_EQ(src.state(), VcpuState::Running);
    EXPECT_EQ(dst.state(), VcpuState::Running);
}

TEST_P(HvInvariant, InjectionHonorsDistributionPolicy)
{
    TestbedConfig tc;
    tc.kind = GetParam();
    tc.virqDist = VirqDistribution::Spread;
    Testbed tb(tc);
    // Deliver several packets; with the spread policy the busy
    // cycles must not all land on VCPU0's physical CPU.
    tb.setIdle(0, true);
    for (int i = 0; i < 8; ++i) {
        Packet p;
        p.flow = static_cast<std::uint64_t>(i + 1);
        p.bytes = 1500;
        tb.clientSend(static_cast<Cycles>(i) * 500000, p);
    }
    tb.run();
    int touched = 0;
    for (int c = 0; c < 4; ++c) {
        if (tb.machine().cpu(c).busyCycles() > 0)
            ++touched;
    }
    EXPECT_GE(touched, 3) << "spread policy still funnels to VCPU0";
}

TEST_P(HvInvariant, GuestChargeDoesNotInvolveTheHypervisor)
{
    // Section V: CPU execution runs at native speed; charging guest
    // work must not produce exits.
    Testbed tb(TestbedConfig{.kind = GetParam()});
    const auto exits_before =
        tb.machine().stats().counterValue("kvm.vm_exits") +
        tb.machine().stats().counterValue("xen.traps");
    tb.charge(0, 1, 1000000);
    tb.run();
    const auto exits_after =
        tb.machine().stats().counterValue("kvm.vm_exits") +
        tb.machine().stats().counterValue("xen.traps");
    EXPECT_EQ(exits_before, exits_after);
    EXPECT_EQ(tb.machine().cpu(1).busyCycles(), 1000000u);
}

TEST_P(HvInvariant, TransmitConservesPackets)
{
    Testbed tb(TestbedConfig{.kind = GetParam()});
    Vcpu &v = tb.guest()->vcpu(0);
    int client_got = 0;
    tb.onClientRx = [&](Cycles, const Packet &) { ++client_got; };
    const int n = 12;
    for (int i = 0; i < n; ++i) {
        Packet p;
        p.flow = 1;
        p.bytes = 1500;
        p.seq = static_cast<std::uint64_t>(i + 1);
        tb.hypervisor()->guestTransmit(tb.queue().now(), v, p,
                                       [](Cycles) {});
    }
    tb.run();
    EXPECT_EQ(client_got, n);
    EXPECT_EQ(tb.machine().stats().counterValue("nic.tx_packets"),
              static_cast<std::uint64_t>(n));
}

TEST_P(HvInvariant, RxPathDeliversEveryAcceptedPacket)
{
    Testbed tb(TestbedConfig{.kind = GetParam()});
    tb.setIdle(0, true);
    std::uint64_t delivered = 0;
    tb.onVmRx = [&](Cycles, const Packet &pkt) {
        delivered += framesFor(pkt.bytes);
    };
    const std::uint64_t n = 20;
    for (std::uint64_t i = 0; i < n; ++i) {
        Packet p;
        p.flow = 1;
        p.bytes = 1500;
        // Spaced out: no drops expected.
        tb.clientSend(i * 1000000, p);
    }
    tb.run();
    const std::uint64_t dropped =
        tb.machine().stats().counterValue("nic.rx_dropped") +
        tb.machine().stats().counterValue("netback.rx_no_request") +
        tb.machine().stats().counterValue(
            "netback.rx_backlog_dropped") +
        tb.machine().stats().counterValue("vhost.rx_no_descriptor") +
        tb.machine().stats().counterValue("vhost.rx_backlog_dropped");
    EXPECT_EQ(delivered + dropped, n);
    EXPECT_EQ(dropped, 0u);
}

TEST_P(HvInvariant, BlockedVcpuWakesExactlyOnce)
{
    Testbed tb(TestbedConfig{.kind = GetParam()});
    Vcpu &v = tb.guest()->vcpu(0);
    tb.hypervisor()->blockVcpu(v);
    int handled = 0;
    tb.hypervisor()->injectVirq(0, v, spiNicIrq,
                                [&](Cycles) { ++handled; });
    tb.run();
    EXPECT_EQ(handled, 1);
    EXPECT_EQ(v.state(), VcpuState::Running);
}

INSTANTIATE_TEST_SUITE_P(AllHypervisors, HvInvariant,
                         ::testing::ValuesIn(allHvs),
                         [](const auto &info) {
                             std::string n = to_string(info.param);
                             for (char &c : n) {
                                 if (!std::isalnum(
                                         static_cast<unsigned char>(c)))
                                     c = '_';
                             }
                             return n;
                         });

/** Microbenchmark monotonicity: the documented Table II orderings
 *  between hypervisors, per operation. */
TEST(HvOrdering, IoLatencyOutXenWorstOnArmKvmBestOnX86)
{
    auto io_out = [](SutKind k) {
        Testbed tb(TestbedConfig{.kind = k});
        MicrobenchSuite suite(tb);
        return suite.run(MicroOp::IoLatencyOut, 10).cycles.mean();
    };
    const double kvm_arm = io_out(SutKind::KvmArm);
    const double xen_arm = io_out(SutKind::XenArm);
    const double kvm_x86 = io_out(SutKind::KvmX86);
    const double xen_x86 = io_out(SutKind::XenX86);
    EXPECT_GT(xen_arm, 2 * kvm_arm);
    EXPECT_LT(kvm_x86, kvm_arm);
    EXPECT_GT(xen_x86, 5 * kvm_x86);
}

TEST(HvOrdering, VmSwitchIsNeverAFastPath)
{
    // Table II: switching VMs costs thousands of cycles everywhere —
    // "Type 1 and Type 2 hypervisors perform equally fast on ARM"
    // at this operation.
    auto vm_switch = [](SutKind k) {
        Testbed tb(TestbedConfig{.kind = k});
        MicrobenchSuite suite(tb);
        return suite.run(MicroOp::VmSwitch, 10).cycles.mean();
    };
    const double kvm_arm = vm_switch(SutKind::KvmArm);
    const double xen_arm = vm_switch(SutKind::XenArm);
    EXPECT_GT(xen_arm, 8000.0);
    EXPECT_GT(kvm_arm, 8000.0);
    EXPECT_LT(xen_arm, kvm_arm); // only slightly better
    EXPECT_GT(xen_arm, 0.8 * kvm_arm);
}
