/**
 * @file
 * Fleet-scale tests: the VM-count axis (VIRTSIM_FLEET_VMS), balanced
 * shard planning, and the sparse coordinator's behavior on fleets
 * with hundreds of mostly idle lanes. The determinism bar extends
 * unchanged to fleet scale: modelled results and exports must be
 * byte-identical at every lane count and under every shard plan —
 * plans and coordinators only move wall-clock, never results.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/fleet.hh"
#include "hw/machine.hh"

using namespace virtsim;

namespace {

/** Scoped environment override; restores the prior value on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name(name)
    {
        const char *prev = std::getenv(name);
        if (prev)
            saved = prev;
        had = prev != nullptr;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (had)
            ::setenv(name, saved.c_str(), 1);
        else
            ::unsetenv(name);
    }

  private:
    const char *name;
    std::string saved;
    bool had = false;
};

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/** A 64-VM fleet with skewed per-VM load, sized to finish fast. */
FleetConfig
skewedFleet()
{
    FleetConfig cfg;
    cfg.nVms = 64;
    cfg.transactionsPerConn = 6;
    // VM 0 is a hot spot; the rest idle along on one connection.
    cfg.connsByVm.assign(64, 1);
    cfg.connsByVm[0] = 24;
    return cfg;
}

} // namespace

TEST(FleetScale, ModelledResultsIdenticalAcrossLanesAndPlans)
{
    const FleetConfig cfg = skewedFleet();
    const FleetResult serial = runNetperfRrFleet(cfg, 1);
    std::uint64_t conns = 0;
    for (const int k : cfg.connsByVm)
        conns += static_cast<std::uint64_t>(k);
    EXPECT_EQ(serial.transactions,
              conns * static_cast<std::uint64_t>(
                          cfg.transactionsPerConn));
    for (const int lanes : {8, 64}) {
        FleetConfig balanced = cfg;
        const FleetResult b = runNetperfRrFleet(balanced, lanes);
        EXPECT_TRUE(serial.sameModelledResult(b))
            << "balanced plan, lanes=" << lanes
            << " checksum=" << b.checksum;
        FleetConfig rr = cfg;
        rr.roundRobinPlan = true;
        const FleetResult r = runNetperfRrFleet(rr, lanes);
        EXPECT_TRUE(serial.sameModelledResult(r))
            << "round-robin plan, lanes=" << lanes
            << " checksum=" << r.checksum;
    }
}

TEST(FleetScale, ExportsByteIdenticalAcrossLanesAndPlans)
{
    FleetConfig cfg = skewedFleet();
    cfg.latency = true;
    ScopedEnv m("VIRTSIM_METRICS", "/tmp/fleet_scale_m.json");
    ScopedEnv noStats("VIRTSIM_SHARD_STATS", nullptr);

    auto runOnce = [&cfg](int lanes, bool rr) {
        FleetConfig c = cfg;
        c.roundRobinPlan = rr;
        (void)runNetperfRrFleet(c, lanes);
        return slurp("/tmp/fleet_scale_m.fleet.json");
    };
    const std::string serial = runOnce(1, false);
    ASSERT_FALSE(serial.empty());
    for (const int lanes : {8, 64}) {
        EXPECT_EQ(serial, runOnce(lanes, false))
            << "balanced plan, lanes=" << lanes;
        EXPECT_EQ(serial, runOnce(lanes, true))
            << "round-robin plan, lanes=" << lanes;
    }
}

TEST(FleetScale, ShardStatsExportIsSparseAtFleetScale)
{
    // The shard counters are interned after the lanes join
    // (endParallel lifts the prepareForParallel freeze), so opting
    // in on a fleet run must not trip the late-intern panic, and
    // the export must carry the sparse rows plus the aggregates.
    FleetConfig cfg = skewedFleet();
    ScopedEnv m("VIRTSIM_METRICS", "/tmp/fleet_scale_stats.json");
    ScopedEnv stats("VIRTSIM_SHARD_STATS", "1");
    (void)runNetperfRrFleet(cfg, 64);
    const std::string json = slurp("/tmp/fleet_scale_stats.fleet.json");
    ASSERT_FALSE(json.empty());
    EXPECT_NE(json.find("\"shard.lanes_active\""), std::string::npos);
    EXPECT_NE(json.find("\"shard.lane_dispatches\""), std::string::npos);
    // Sparse publication: a skewed 64-lane fleet leaves some lanes
    // with no events at all, so not every lane gets per-lane taps.
    // The x100 ratio tap appears exactly once per published lane.
    int publishedLanes = 0;
    const std::string ratioTap = ".events_per_advance_x100\"";
    for (std::size_t at = json.find(ratioTap); at != std::string::npos;
         at = json.find(ratioTap, at + 1))
        ++publishedLanes;
    EXPECT_GT(publishedLanes, 0);
    EXPECT_LE(publishedLanes, 64);
}

TEST(FleetScale, SparseCoordinatorMatchesDenseReference)
{
    const FleetConfig cfg = skewedFleet();
    const FleetResult sparse = runNetperfRrFleet(cfg, 16);
    FleetResult dense;
    {
        ScopedEnv d("VIRTSIM_SHARD_DENSE", "1");
        dense = runNetperfRrFleet(cfg, 16);
    }
    EXPECT_TRUE(sparse.sameModelledResult(dense))
        << "sparse checksum=" << sparse.checksum
        << " dense checksum=" << dense.checksum;
    // Same horizons, same rounds — only the dispatch accounting may
    // differ (the dense reference hands every lane to the execute
    // phase; the sparse coordinator elides the idle ones).
    EXPECT_EQ(sparse.rounds, dense.rounds);
    EXPECT_LE(sparse.laneDispatches, dense.laneDispatches);
}

TEST(FleetScale, IdleLanesAreElidedFromDispatch)
{
    // The skewed fleet's light VMs finish their 6 transactions early
    // and leave VM 0 grinding through 24 connections alone: from then
    // on most of the 64 lanes hold no events. The sparse coordinator
    // must pay per *runnable* lane, which shows up as a mean dispatch
    // count per round far below the lane count.
    const FleetConfig cfg = skewedFleet();
    const FleetResult r = runNetperfRrFleet(cfg, 64);
    ASSERT_GT(r.rounds, 0u);
    const double meanDispatch =
        static_cast<double>(r.laneDispatches) /
        static_cast<double>(r.rounds);
    EXPECT_LT(meanDispatch, 64.0 / 2)
        << "mean runnable lanes per round " << meanDispatch
        << " over " << r.rounds << " rounds";
}

TEST(FleetVmsEnv, OverridesVmCount)
{
    FleetConfig cfg;
    cfg.connsPerCpu = 2;
    cfg.transactionsPerConn = 5;
    ScopedEnv e("VIRTSIM_FLEET_VMS", "16");
    const FleetResult r = runNetperfRrFleet(cfg, 4);
    EXPECT_EQ(r.transactions, 16u * 2u * 5u);
}

TEST(FleetVmsEnvDeath, RejectsGarbageZeroAndOverflow)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    FleetConfig cfg;
    cfg.connsPerCpu = 1;
    cfg.transactionsPerConn = 1;
    {
        ScopedEnv e("VIRTSIM_FLEET_VMS", "lots");
        EXPECT_DEATH((void)runNetperfRrFleet(cfg, 1),
                     "positive integer");
    }
    {
        ScopedEnv e("VIRTSIM_FLEET_VMS", "0");
        EXPECT_DEATH((void)runNetperfRrFleet(cfg, 1),
                     "must be positive");
    }
    {
        // One past the documented ceiling: a fat-fingered VM count
        // must be a loud failure, not a melted host.
        ScopedEnv e("VIRTSIM_FLEET_VMS", "257");
        EXPECT_DEATH((void)runNetperfRrFleet(cfg, 1),
                     "out of range \\(max 256\\)");
    }
    {
        ScopedEnv e("VIRTSIM_FLEET_VMS", "99999999999999999999");
        EXPECT_DEATH((void)runNetperfRrFleet(cfg, 1),
                     "out of range");
    }
}

TEST(BalancedPlan, PacksHeaviestFirstOntoLeastLoadedLane)
{
    // LPT by hand: weights {5,1,1,1} on 2 lanes. CPU 0 (weight 5)
    // lands first on lane 0; the three singletons then all prefer
    // lane 1, whose load stays below 5 throughout.
    const MachineShardPlan p =
        MachineShardPlan::balanced(4, 2, {5, 1, 1, 1});
    ASSERT_EQ(p.cpuLane.size(), 4u);
    EXPECT_EQ(p.cpuLane[0], 0);
    EXPECT_EQ(p.cpuLane[1], 1);
    EXPECT_EQ(p.cpuLane[2], 1);
    EXPECT_EQ(p.cpuLane[3], 1);
}

TEST(BalancedPlan, DeviceWeightPreloadsLaneZero)
{
    // With the device side preloaded heavier than the whole fleet,
    // every CPU prefers lane 1.
    const MachineShardPlan p =
        MachineShardPlan::balanced(4, 2, {5, 1, 1, 1}, 9);
    ASSERT_EQ(p.cpuLane.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(p.cpuLane[static_cast<std::size_t>(i)], 1)
            << "cpu " << i;
}

TEST(BalancedPlan, UniformWeightsSpreadRoundRobinish)
{
    // 8 uniform CPUs on 4 lanes: every lane ends with exactly two,
    // and ties resolve deterministically (lowest lane first).
    const MachineShardPlan p = MachineShardPlan::balanced(8, 4);
    ASSERT_EQ(p.cpuLane.size(), 8u);
    std::vector<int> perLane(4, 0);
    for (const int ln : p.cpuLane) {
        ASSERT_GE(ln, 0);
        ASSERT_LT(ln, 4);
        ++perLane[static_cast<std::size_t>(ln)];
    }
    for (int ln = 0; ln < 4; ++ln)
        EXPECT_EQ(perLane[static_cast<std::size_t>(ln)], 2)
            << "lane " << ln;
    // Determinism: a pure function of its inputs.
    const MachineShardPlan q = MachineShardPlan::balanced(8, 4);
    EXPECT_EQ(p.cpuLane, q.cpuLane);
}

TEST(FleetScale, SparseCoordinatorBeatsDenseAt256Vms)
{
    // The scaling acceptance bar: on a 256-VM fleet the sparse
    // coordinator's round loop must run at least 2x faster than the
    // dense reference, whose per-round cost is O(lanes^2) in the
    // merge scan and LBTS iteration alone. The win is coordinator
    // cost, not crew parallelism, but a single-core host skews both
    // sides, so keep the same gate as the other speedup tests.
    if (std::thread::hardware_concurrency() < 4)
        GTEST_SKIP() << "host has < 4 CPUs; wall-clock too noisy";

    FleetConfig cfg;
    cfg.nVms = 256;
    cfg.connsPerCpu = 2;
    cfg.transactionsPerConn = 4;
    const auto wall = [&cfg](const char *dense) {
        ScopedEnv d("VIRTSIM_SHARD_DENSE", dense);
        double best = 1e300;
        for (int rep = 0; rep < 3; ++rep) {
            const auto t0 = std::chrono::steady_clock::now();
            const FleetResult r = runNetperfRrFleet(cfg, 256);
            const std::chrono::duration<double> dt =
                std::chrono::steady_clock::now() - t0;
            EXPECT_GT(r.transactions, 0u);
            best = std::min(best, dt.count());
        }
        return best;
    };
    const double dense = wall("1");
    const double sparse = wall(nullptr);
    EXPECT_GE(dense / sparse, 2.0)
        << "dense " << dense << "s vs sparse " << sparse << "s";
}
