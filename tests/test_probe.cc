/**
 * @file
 * Tests for the structured observability subsystem (sim/probe):
 * tap interning, the ring-buffer trace sink, Chrome-trace/Perfetto
 * export, the metrics registry, and the event-kernel profiler.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "core/microbench.hh"
#include "core/netperf.hh"
#include "core/testbed.hh"
#include "sim/probe.hh"
#include "sim/sweep.hh"

// ---------------------------------------------------------------------
// Binary-wide allocation counter. The dead-probe fast path (stamping
// with the sink disabled) must be one predictable branch with zero
// allocations; counting every operator new in this test binary proves
// it without a heap profiler, and keeps working under the sanitizer
// builds (ASan intercepts malloc below this layer).
// ---------------------------------------------------------------------

namespace {

std::atomic<std::uint64_t> g_news{0};

void *
countedAlloc(std::size_t size)
{
    g_news.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

using namespace virtsim;

namespace {

/**
 * Minimal JSON well-formedness checker (structure only, no schema):
 * enough to prove the exporter emits something a real parser — and
 * ui.perfetto.dev — will accept.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s(text) {}

    bool
    valid()
    {
        pos = 0;
        const bool ok = value();
        skipWs();
        return ok && pos == s.size();
    }

  private:
    bool
    value()
    {
        skipWs();
        if (pos >= s.size())
            return false;
        switch (s[pos]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object()
    {
        ++pos; // '{'
        skipWs();
        if (pos < s.size() && s[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (pos >= s.size() || s[pos] != ':')
                return false;
            ++pos;
            if (!value())
                return false;
            skipWs();
            if (pos < s.size() && s[pos] == ',') {
                ++pos;
                continue;
            }
            break;
        }
        if (pos >= s.size() || s[pos] != '}')
            return false;
        ++pos;
        return true;
    }

    bool
    array()
    {
        ++pos; // '['
        skipWs();
        if (pos < s.size() && s[pos] == ']') {
            ++pos;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            skipWs();
            if (pos < s.size() && s[pos] == ',') {
                ++pos;
                continue;
            }
            break;
        }
        if (pos >= s.size() || s[pos] != ']')
            return false;
        ++pos;
        return true;
    }

    bool
    string()
    {
        if (pos >= s.size() || s[pos] != '"')
            return false;
        ++pos;
        while (pos < s.size() && s[pos] != '"') {
            if (s[pos] == '\\') {
                ++pos;
                if (pos >= s.size())
                    return false;
            }
            ++pos;
        }
        if (pos >= s.size())
            return false;
        ++pos; // closing quote
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos;
        if (pos < s.size() && (s[pos] == '-' || s[pos] == '+'))
            ++pos;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '-' || s[pos] == '+')) {
            ++pos;
        }
        return pos > start;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (s.compare(pos, n, word) != 0)
            return false;
        pos += n;
        return true;
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos]))) {
            ++pos;
        }
    }

    std::string s;
    std::size_t pos = 0;
};

} // namespace

TEST(TapIntern, IdempotentAndUnique)
{
    const TapId a = internTap("probe.test.alpha");
    const TapId b = internTap("probe.test.beta");
    EXPECT_TRUE(a.valid());
    EXPECT_TRUE(b.valid());
    EXPECT_NE(a.raw(), b.raw());
    // Idempotent: same name, same id.
    EXPECT_EQ(internTap("probe.test.alpha"), a);
    EXPECT_EQ(tapName(a), "probe.test.alpha");
    EXPECT_EQ(tapName(TapId()), "?");
    EXPECT_GE(internedTapCount(), 2u);
}

TEST(TraceSink, RingWrapIsCountedNeverSilent)
{
    const TapId tap = internTap("probe.test.wrap");
    TraceSink sink;
    sink.setCapacity(3); // rounds up to 4
    EXPECT_EQ(sink.capacity(), 4u);
    sink.enable();
    for (Cycles t = 0; t < 10; ++t)
        sink.instant(t, tap, TraceCat::Sched, noTrack, t);
    EXPECT_EQ(sink.total(), 10u);
    EXPECT_EQ(sink.size(), 4u);
    EXPECT_EQ(sink.dropped(), 6u);
    // The oldest retained record is the 7th written (when == 6).
    EXPECT_EQ(sink.at(0).when, 6u);
    EXPECT_EQ(sink.at(3).when, 9u);

    // The exporter surfaces the loss in the metadata.
    std::ostringstream os;
    writeChromeTrace(os, sink, Frequency(2.4));
    EXPECT_NE(os.str().find("\"droppedRecords\":6"),
              std::string::npos);

    // forEachSince respects a watermark and skips dropped records.
    std::vector<Cycles> seen;
    sink.forEachSince(8, [&seen](const TraceRecord &r) {
        seen.push_back(r.when);
    });
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], 8u);
    EXPECT_EQ(seen[1], 9u);
}

TEST(TraceSink, TruncatedSpansAreCountedNotMispaired)
{
    // When the ring wraps over a span's opening edge (a Begin, or the
    // `from` stamp of a tap pair), post-hoc pairing would silently
    // match the surviving close against a later open. The sink counts
    // each such loss instead.
    const TapId span_tap = internTap("probe.test.trunc.span");
    const TapId pair_tap = internTap("probe.test.trunc.pair");
    const TapId filler = internTap("probe.test.trunc.fill");
    TraceSink sink;
    sink.setCapacity(4);
    sink.enable();

    sink.begin(0, span_tap, TraceCat::Switch, 0); // will be overwritten
    sink.stamp(1, 7, pair_tap);                   // will be overwritten
    EXPECT_EQ(sink.truncatedSpans(), 0u);
    for (Cycles t = 2; t < 8; ++t)
        sink.instant(t, filler, TraceCat::Sched); // harmless filler
    // The Begin and the Tap stamp were each overwritten once; the
    // overwritten Sched instants carry no pairing and don't count.
    EXPECT_EQ(sink.truncatedSpans(), 2u);
    EXPECT_GT(sink.dropped(), 0u);

    // clear() resets the count with the rest of the run state.
    sink.clear();
    EXPECT_EQ(sink.truncatedSpans(), 0u);
    EXPECT_EQ(sink.dropped(), 0u);
}

TEST(TraceSink, ExporterWarnsOnOverflow)
{
    const TapId tap = internTap("probe.test.overflow.warn");
    TraceSink sink;
    sink.setCapacity(2);
    sink.enable();
    sink.begin(0, tap, TraceCat::Switch, 0);
    for (Cycles t = 1; t < 6; ++t)
        sink.instant(t, tap, TraceCat::Sched);

    std::ostringstream os;
    writeChromeTrace(os, sink, Frequency(2.4));
    const std::string json = os.str();
    // A metadata instant flags the loss for anyone reading the trace
    // in the Perfetto UI, alongside the summary counts.
    EXPECT_NE(json.find("trace_ring_overflow"), std::string::npos);
    EXPECT_NE(json.find("\"truncatedSpans\":1"), std::string::npos);

    // A sink that never dropped emits no warning event.
    TraceSink clean;
    clean.enable();
    clean.instant(1, tap, TraceCat::Sched);
    std::ostringstream os2;
    writeChromeTrace(os2, clean, Frequency(2.4));
    EXPECT_EQ(os2.str().find("trace_ring_overflow"),
              std::string::npos);
}

TEST(Probe, SyncTraceHealthPublishesLossCounters)
{
    const TapId tap = internTap("probe.test.health");
    Probe probe;
    probe.trace.setCapacity(2);
    probe.trace.enable();

    // Clean runs add no counters: snapshots stay byte-identical with
    // or without the sync.
    probe.trace.instant(1, tap, TraceCat::Sched);
    probe.syncTraceHealth();
    EXPECT_TRUE(probe.metrics.snapshot().counters.empty());

    probe.trace.begin(2, tap, TraceCat::Switch, 0);
    for (Cycles t = 3; t < 9; ++t)
        probe.trace.instant(t, tap, TraceCat::Sched);
    probe.syncTraceHealth();
    const MetricsSnapshot snap = probe.metrics.snapshot();
    bool saw_dropped = false, saw_truncated = false;
    for (const auto &c : snap.counters) {
        if (c.name == "trace.health.dropped_records") {
            EXPECT_EQ(c.value, probe.trace.dropped());
            saw_dropped = true;
        }
        if (c.name == "trace.health.truncated_spans") {
            EXPECT_EQ(c.value, probe.trace.truncatedSpans());
            saw_truncated = true;
        }
    }
    EXPECT_TRUE(saw_dropped);
    EXPECT_TRUE(saw_truncated);

    // Repeated syncs are idempotent (top-up, not re-add).
    probe.syncTraceHealth();
    EXPECT_EQ(probe.metrics.snapshot(), snap);
}

TEST(TraceSink, CapacityEnvKnobSizesTestbedRing)
{
    // VIRTSIM_TRACE_CAPACITY resizes the testbed's ring before the
    // sink is enabled (rounded up to the next power of two).
    ::setenv("VIRTSIM_TRACE_CAPACITY", "3000", 1);
    {
        Testbed tb(TestbedConfig{.kind = SutKind::KvmArm});
        EXPECT_EQ(tb.trace().capacity(), 4096u);
    }
    ::unsetenv("VIRTSIM_TRACE_CAPACITY");
    {
        Testbed tb(TestbedConfig{.kind = SutKind::KvmArm});
        EXPECT_EQ(tb.trace().capacity(), 0u); // not enabled, unsized
    }
}

TEST(TraceSink, EdgeRecordsCarryTokensAndExport)
{
    const TapId tap = internTap("probe.test.edge");
    TraceSink sink;
    sink.enable();
    const std::uint64_t t1 = sink.edgeOut(100, tap, TraceCat::Irq, 0);
    const std::uint64_t t2 = sink.edgeOut(110, tap, TraceCat::Irq, 0);
    EXPECT_NE(t1, 0u);
    // Tokens are (per-lane sequence << laneTokenBits) | lane; setup-
    // context stamping lands in lane segment 0, so consecutive tokens
    // step by one full lane stride.
    EXPECT_EQ(t1, std::uint64_t{1} << TraceSink::laneTokenBits);
    EXPECT_EQ(t2, t1 + (std::uint64_t{1} << TraceSink::laneTokenBits));
    sink.edgeIn(150, t1, tap, TraceCat::Irq, 1);
    sink.edgeIn(0, 0, tap, TraceCat::Irq, 1); // token 0: no-op
    EXPECT_EQ(sink.size(), 3u);

    std::ostringstream os;
    writeChromeTrace(os, sink, Frequency(2.4));
    const std::string json = os.str();
    // Chrome flow events: "s" (start) paired with "f" (finish) by id.
    EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json;

    // clear() restarts the token sequence with the rest of the state.
    sink.clear();
    sink.enable();
    EXPECT_EQ(sink.edgeOut(10, tap, TraceCat::Irq, 0),
              std::uint64_t{1} << TraceSink::laneTokenBits);
}

TEST(TraceSink, NestedSpansPairLikeAStack)
{
    const TapId outer = internTap("probe.test.outer");
    const TapId inner = internTap("probe.test.inner");
    TraceSink sink;
    sink.enable();
    sink.begin(100, outer, TraceCat::Switch, 0);
    sink.begin(110, inner, TraceCat::Switch, 0);
    sink.end(140, inner, TraceCat::Switch, 0);
    sink.end(200, outer, TraceCat::Switch, 0);
    sink.span(300, 320, inner, TraceCat::Switch, 1);

    // Replay with a per-track stack: every End must close the
    // innermost open Begin with the same tap, and nothing stays open.
    std::vector<std::vector<TapId>> stacks(2);
    int pairs = 0;
    sink.forEach([&](const TraceRecord &r) {
        auto &st = stacks[r.track];
        if (r.kind == TraceKind::Begin) {
            st.push_back(r.tap);
        } else if (r.kind == TraceKind::End) {
            ASSERT_FALSE(st.empty());
            EXPECT_EQ(st.back(), r.tap);
            st.pop_back();
            ++pairs;
        }
    });
    EXPECT_EQ(pairs, 3);
    EXPECT_TRUE(stacks[0].empty());
    EXPECT_TRUE(stacks[1].empty());
}

// ---------------------------------------------------------------------
// Lane-partitioned sinks (ISSUE 7 tentpole): per-lane ring segments,
// the canonical export-time merge, the deferred observer, and exact
// overflow accounting under multi-lane stamping.
// ---------------------------------------------------------------------

namespace {

/**
 * Stamp one small multi-CPU "world" into a sink: a span and a tap per
 * track, cross-track causal edges, and a same-timestamp collision
 * between tracks. When `partitioned`, each track's records are
 * stamped under that track's LaneScope — the sharded-kernel shape;
 * otherwise everything lands in segment 0, the classic serial shape.
 * Either way the logical record multiset is identical.
 */
void
stampWorld(TraceSink &sink, bool partitioned)
{
    const TapId svc = internTap("merge.test.svc");
    const TapId tapStamp = internTap("merge.test.tap");
    const TapId edge = internTap("merge.test.edge");
    std::uint64_t tok[3] = {0, 0, 0};
    for (int cpu = 0; cpu < 3; ++cpu) {
        std::optional<LaneScope> scope;
        if (partitioned)
            scope.emplace(cpu);
        const auto track = static_cast<std::uint16_t>(cpu);
        const Cycles base = 100 * (cpu + 1);
        sink.span(base, base + 40, svc, TraceCat::Op, track);
        sink.stamp(base + 10, 7, tapStamp, track);
        // Same instant on every track: the canonical order must break
        // the tie by track, not by which lane flushed first.
        sink.instant(500, tapStamp, TraceCat::Sched, track);
        tok[cpu] = sink.edgeOut(base + 20, edge, TraceCat::Irq,
                                track);
    }
    for (int cpu = 0; cpu < 3; ++cpu) {
        const int dst = (cpu + 1) % 3;
        std::optional<LaneScope> scope;
        if (partitioned)
            scope.emplace(dst);
        sink.edgeIn(600 + 10 * cpu, tok[cpu], edge, TraceCat::Irq,
                    static_cast<std::uint16_t>(dst));
    }
}

} // namespace

TEST(TraceSink, CanonicalMergeIsPartitionInvariant)
{
    // The byte-identity bar at unit scale: the same logical records,
    // stamped once through a single-segment sink and once spread over
    // three lane segments, must export byte-identically — the merge
    // order is a pure function of the record multiset, and flow ids
    // are renumbered by first appearance so lane-encoded token values
    // never leak into the bytes.
    TraceSink serial;
    serial.enable();
    stampWorld(serial, false);

    TraceSink sharded;
    sharded.enable();
    sharded.prepareForParallel(3);
    stampWorld(sharded, true);

    EXPECT_EQ(serial.laneCount(), 1);
    EXPECT_EQ(sharded.laneCount(), 3);
    EXPECT_EQ(serial.size(), sharded.size());

    std::ostringstream a, b;
    writeChromeTrace(a, serial, Frequency(2.4));
    writeChromeTrace(b, sharded, Frequency(2.4));
    ASSERT_FALSE(a.str().empty());
    EXPECT_EQ(a.str(), b.str());
    JsonChecker checker(a.str());
    EXPECT_TRUE(checker.valid()) << a.str();
}

TEST(TraceSink, DeferredObserverDeliversCanonicalOrderPerFlush)
{
    struct Collector : TraceObserver
    {
        std::vector<TraceRecord> seen;
        void
        onTraceRecord(const TraceRecord &r) override
        {
            seen.push_back(r);
        }
    };
    const TapId tap = internTap("merge.test.deferred");
    TraceSink sink;
    sink.enable();
    sink.prepareForParallel(2);
    Collector obs;
    sink.setObserver(&obs);
    sink.setObserverDeferred(true);

    // Lane 1 stamps earlier simulated times than lane 0 stamped
    // before it: nothing reaches the observer until the flush, and
    // the flush delivers time-sorted, not arrival-sorted.
    {
        LaneScope lane(0);
        sink.instant(300, tap, TraceCat::Sched, 0);
    }
    {
        LaneScope lane(1);
        sink.instant(100, tap, TraceCat::Sched, 1);
    }
    EXPECT_TRUE(obs.seen.empty());
    sink.flushObserver();
    ASSERT_EQ(obs.seen.size(), 2u);
    EXPECT_EQ(obs.seen[0].when, 100u);
    EXPECT_EQ(obs.seen[1].when, 300u);

    // A second flush delivers only what arrived in between.
    {
        LaneScope lane(1);
        sink.instant(400, tap, TraceCat::Sched, 1);
    }
    sink.flushObserver();
    ASSERT_EQ(obs.seen.size(), 3u);
    EXPECT_EQ(obs.seen[2].when, 400u);
    sink.flushObserver(); // idempotent when nothing is pending
    EXPECT_EQ(obs.seen.size(), 3u);
}

TEST(TraceSink, OverflowCountsExactUnderMultiLaneStamping)
{
    const TapId tap = internTap("merge.test.overflow");
    TraceSink sink;
    sink.setCapacity(8);
    sink.prepareForParallel(2);
    sink.enable();
    for (int lane = 0; lane < 2; ++lane) {
        LaneScope scope(lane);
        for (int i = 0; i < 20; ++i) {
            sink.stamp(static_cast<Cycles>(10 * i + lane), 1, tap,
                       static_cast<std::uint16_t>(lane));
        }
    }
    // 20 writes into an 8-slot segment on each lane: totals and
    // losses must come out exact, not approximate — overflow is
    // accounted per segment and summed.
    EXPECT_EQ(sink.total(), 40u);
    EXPECT_EQ(sink.size(), 16u);
    EXPECT_EQ(sink.dropped(), 24u);
    // Every overwritten record was a Tap instant, so each one also
    // counts as a truncated span open.
    EXPECT_EQ(sink.truncatedSpans(), 24u);
}

TEST(TraceSinkConcurrent, ParallelStampingNeverSynchronizes)
{
    // The zero-synchronization stamping contract, in the shape TSan
    // hunts: four real threads stamping concurrently into one enabled
    // sink, each under its own LaneScope. Every record must land, and
    // the post-hoc accounting and canonical merge must agree.
    constexpr int lanes = 4;
    constexpr int perLane = 8192;
    const TapId tap = internTap("merge.test.concurrent");
    TraceSink sink;
    sink.setCapacity(perLane);
    sink.prepareForParallel(lanes);
    sink.enable();

    std::vector<std::thread> crew;
    for (int lane = 0; lane < lanes; ++lane) {
        crew.emplace_back([&sink, tap, lane] {
            LaneScope scope(lane);
            for (int i = 0; i < perLane; ++i) {
                sink.stamp(static_cast<Cycles>(i * lanes + lane), 1,
                           tap, static_cast<std::uint16_t>(lane));
            }
        });
    }
    for (std::thread &t : crew)
        t.join();

    EXPECT_EQ(sink.total(),
              static_cast<std::uint64_t>(lanes) * perLane);
    EXPECT_EQ(sink.dropped(), 0u);
    Cycles last = 0;
    std::size_t visited = 0;
    sink.forEachMerged([&](const TraceRecord &r) {
        EXPECT_GE(r.when, last);
        last = r.when;
        ++visited;
    });
    EXPECT_EQ(visited, sink.size());
}

TEST(ChromeTrace, ExportIsWellFormedJson)
{
    const TapId tap = internTap("probe.test.export");
    const TapId quoted = internTap("probe.test.\"quoted\\name");
    TraceSink sink;
    sink.enable();
    sink.span(100, 260, tap, TraceCat::Switch, 0, 160);
    sink.instant(300, quoted, TraceCat::Irq, 3, 27);
    sink.stamp(400, 7, tap);

    std::ostringstream os;
    writeChromeTrace(os, sink, Frequency(2.4), "unit-test");
    const std::string json = os.str();

    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    EXPECT_NE(json.find("cpu0"), std::string::npos);
    EXPECT_NE(json.find("unit-test"), std::string::npos);
}

TEST(Metrics, SnapshotIsDeterministicAcrossSweepWidths)
{
    // Under parallel sweeps, workers intern taps in nondeterministic
    // order, so raw TapIds differ between runs. Snapshots are keyed
    // and sorted by name and must come out byte-identical for any
    // VIRTSIM_JOBS width.
    const std::vector<SutKind> kinds = {
        SutKind::KvmArm, SutKind::XenArm, SutKind::KvmX86,
        SutKind::KvmArmVhe};
    auto run_cols = [&kinds](int jobs) {
        return parallelSweepIndexed(
            kinds.size(),
            [&kinds](std::size_t i) {
                TestbedConfig tc;
                tc.kind = kinds[i];
                Testbed tb(tc);
                MicrobenchSuite suite(tb);
                suite.run(MicroOp::Hypercall, 10);
                suite.run(MicroOp::VirtualIpi, 10);
                return tb.metrics().snapshot();
            },
            jobs);
    };
    const auto serial = run_cols(1);
    const auto parallel = run_cols(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_FALSE(serial[i].counters.empty());
        EXPECT_EQ(serial[i], parallel[i]) << "column " << i;
    }
}

TEST(Metrics, ResetGivesIndependentSnapshotsAcrossReruns)
{
    // Two identical workloads back to back on one testbed must
    // report identical, independent metrics — counters may not leak
    // from the first run into the second.
    Testbed tb(TestbedConfig{.kind = SutKind::KvmArm});
    auto run_once = [&tb] {
        tb.beginRun();
        for (int i = 0; i < 5; ++i) {
            const Cycles t0 =
                std::max(tb.queue().now(), tb.frontier(0));
            tb.hypervisor()->hypercall(t0, tb.guest()->vcpu(0),
                                       [](Cycles) {});
            tb.run();
        }
        return tb.metrics().snapshot();
    };
    const MetricsSnapshot first = run_once();
    const MetricsSnapshot second = run_once();
    EXPECT_FALSE(first.counters.empty());
    EXPECT_EQ(first, second);
    // The digest shows real activity, and the JSON form parses.
    EXPECT_NE(first.brief().find("vm:vm0"), std::string::npos);
    JsonChecker checker(first.toJson());
    EXPECT_TRUE(checker.valid()) << first.toJson();
}

TEST(Metrics, DomainsAccumulateByTap)
{
    MetricsRegistry reg;
    const TapId tap = internTap("probe.test.counter");
    reg.machine().counter(tap).inc(3);
    reg.vm("vmA").counter(tap).inc();
    reg.cpu(2).histogram(tap).add(500);
    const MetricsSnapshot snap = reg.snapshot();
    bool saw_machine = false, saw_vm = false;
    for (const auto &r : snap.counters) {
        if (r.domain == "machine" && r.name == "probe.test.counter") {
            EXPECT_EQ(r.value, 3u);
            saw_machine = true;
        }
        if (r.domain == "vm:vmA" && r.name == "probe.test.counter") {
            EXPECT_EQ(r.value, 1u);
            saw_vm = true;
        }
    }
    EXPECT_TRUE(saw_machine);
    EXPECT_TRUE(saw_vm);
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].domain, "cpu:2");
    EXPECT_EQ(snap.histograms[0].count, 1u);
    EXPECT_EQ(snap.histograms[0].min, 500u);
}

TEST(MetricsDeath, LateTapAfterPrepareForParallelDies)
{
    // prepareForParallel() freezes the tap-indexed arrays so shard
    // lanes may bump counters concurrently. A tap first touched after
    // the freeze would have to grow the vector under those readers —
    // a data race; it must fail deterministically instead.
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_DEATH(
        {
            MetricsRegistry reg;
            reg.machine().counter(internTap("probe.test.early"));
            reg.prepareForParallel(0);
            reg.machine().counter(
                internTap("probe.test.late.never.warmed"));
        },
        "after prepareForParallel");
}

TEST(HistogramStat, BoundedBucketsWithExactEnvelope)
{
    HistogramStat h;
    EXPECT_TRUE(h.empty());
    h.add(0);
    h.add(1);
    h.add(2);
    h.add(3);
    h.add(1000);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_EQ(h.sum(), 1006u);
    EXPECT_DOUBLE_EQ(h.mean(), 1006.0 / 5.0);
    // log2 bucketing: 0 -> bucket 0, 1 -> 1, [2,3] -> 2,
    // 1000 -> bit_width(1000) == 10.
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 2u);
    EXPECT_EQ(h.bucketCount(10), 1u);
    // The extremes map into the fixed bucket range.
    EXPECT_EQ(HistogramStat::bucketOf(UINT64_MAX),
              HistogramStat::numBuckets);
    h.reset();
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.bucketCount(2), 0u);
}

TEST(EventKernelProfiler, RecordsDispatchLatencyPerLabel)
{
    EventQueue eq;
    EventKernelProfiler prof;
    eq.setProfiler(&prof);
    const TapId label = internTap("probe.test.event");
    int fired = 0;
    eq.scheduleAfter(10, label, [&fired] { ++fired; });
    eq.scheduleAfter(50, label, [&fired] { ++fired; });
    eq.scheduleAt(70, [&fired] { ++fired; }); // unlabeled
    eq.run();
    EXPECT_EQ(fired, 3);
    const HistogramStat *h = prof.histogram(label);
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 2u);
    EXPECT_EQ(h->min(), 10u);
    EXPECT_EQ(h->max(), 50u);
    const std::string rendered = prof.render();
    EXPECT_NE(rendered.find("probe.test.event"), std::string::npos);
    EXPECT_NE(rendered.find("(unlabeled)"), std::string::npos);
}

TEST(EventKernelProfiler, LaneHistogramsMergeDeterministically)
{
    // Parallel mode: each lane records into its own fixed-size
    // histogram array; the read side must merge lanes exactly — same
    // count/sum/min/max and the same rendering as a serial profiler
    // fed the identical samples.
    const TapId label = internTap("probe.test.lanemerge");
    EventKernelProfiler serial;
    EventKernelProfiler parallel;
    parallel.prepareForParallel(4, internedTapCount());

    const Cycles waits[] = {5, 80, 3, 1200, 64, 7, 80, 9};
    for (int i = 0; i < 8; ++i) {
        serial.record(label, waits[i]);
        LaneScope scope(i % 4);
        parallel.record(label, waits[i]);
    }

    const HistogramStat *h = parallel.histogram(label);
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 8u);
    EXPECT_EQ(h->min(), 3u);
    EXPECT_EQ(h->max(), 1200u);
    EXPECT_EQ(h->sum(), 5u + 80 + 3 + 1200 + 64 + 7 + 80 + 9);
    EXPECT_EQ(parallel.render(), serial.render());
}

TEST(EventKernelProfilerDeath, LateLabelAfterPrepareDies)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_DEATH(
        {
            EventKernelProfiler prof;
            prof.prepareForParallel(2, internedTapCount());
            // Interning after the partition froze the arrays must be
            // a deterministic failure, not an out-of-bounds store
            // under a concurrent lane.
            const TapId late = internTap("probe.test.late.label");
            prof.record(late, 10);
        },
        "interned after");
}

TEST(Probe, TraceEnvExportsLoadableJson)
{
    // VIRTSIM_TRACE end to end: run a short TCP_RR with the variable
    // set, destroy the testbed, and parse what it exported. The
    // testbed suffixes the SUT kind into the filename so multi-config
    // benches don't clobber each other's exports.
    ::setenv("VIRTSIM_TRACE", "probe_test_trace.json", 1);
    const char *path = "probe_test_trace.kvm_arm.json";
    {
        Testbed tb(TestbedConfig{.kind = SutKind::KvmArm});
        NetperfRrConfig cfg;
        cfg.transactions = 20;
        cfg.warmup = 2;
        runNetperfRr(tb, cfg);
    }
    ::unsetenv("VIRTSIM_TRACE");

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream ss;
    ss << in.rdbuf();
    in.close();
    std::remove(path);
    const std::string json = ss.str();
    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid());
    // The Table V taps and the world-switch spans are all there.
    EXPECT_NE(json.find("host.datalink.rx"), std::string::npos);
    EXPECT_NE(json.find("vm.driver.tx"), std::string::npos);
    EXPECT_NE(json.find("kvm.exit"), std::string::npos);
    EXPECT_NE(json.find("ws.save.VGIC"), std::string::npos);
}

// ---------------------------------------------------------------------
// The dead-probe fast path (ISSUE 4 tentpole 3): with the sink
// disabled, every stamping entry point must allocate nothing.
// ---------------------------------------------------------------------

TEST(TraceSinkFastPath, DisabledStampingAllocatesNothing)
{
    TraceSink sink; // never enabled
    const TapId tap = internTap("fastpath.test");
    ASSERT_FALSE(sink.enabled());

    const std::uint64_t before = g_news.load();
    for (int i = 0; i < 10000; ++i) {
        const Cycles t = static_cast<Cycles>(i);
        sink.stamp(t, 1, tap);
        sink.instant(t, tap, TraceCat::Tap);
        sink.begin(t, tap, TraceCat::Switch);
        sink.end(t + 1, tap, TraceCat::Switch);
        sink.span(t, t + 2, tap, TraceCat::Op);
        const std::uint64_t token =
            sink.edgeOut(t, tap, TraceCat::Irq);
        EXPECT_EQ(token, 0u); // disabled sinks mint no edges
        sink.edgeIn(t, token, tap, TraceCat::Irq);
    }
    const std::uint64_t after = g_news.load();
    EXPECT_EQ(after, before);
}

TEST(TraceSinkFastPath, EnabledSteadyStateAllocatesNothing)
{
    // Enabling pays one ring allocation up front; stamping afterwards
    // stays allocation-free (stores into the preallocated ring).
    TraceSink sink;
    sink.setCapacity(1024);
    sink.enable();
    const TapId tap = internTap("fastpath.enabled");

    const std::uint64_t before = g_news.load();
    for (int i = 0; i < 10000; ++i) {
        const Cycles t = static_cast<Cycles>(i);
        sink.stamp(t, 1, tap);
        sink.span(t, t + 2, tap, TraceCat::Op);
        sink.edgeIn(t, sink.edgeOut(t, tap, TraceCat::Irq), tap,
                    TraceCat::Irq);
    }
    const std::uint64_t after = g_news.load();
    EXPECT_EQ(after, before);
}
