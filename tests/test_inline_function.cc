/**
 * @file
 * Tests for InlineFunction, the non-allocating callback type the
 * event kernel dispatches through: value semantics (move-only,
 * destruction, reset) and correct invocation with arguments and
 * return values.
 */

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "sim/inline_function.hh"

using namespace virtsim;

TEST(InlineFunction, DefaultConstructedIsEmpty)
{
    InlineFunction<void()> f;
    EXPECT_FALSE(static_cast<bool>(f));
    InlineFunction<void()> g = nullptr;
    EXPECT_FALSE(static_cast<bool>(g));
}

TEST(InlineFunction, InvokesCaptureWithArgsAndReturn)
{
    int base = 100;
    InlineFunction<int(int, int)> add = [&base](int a, int b) {
        return base + a + b;
    };
    ASSERT_TRUE(static_cast<bool>(add));
    EXPECT_EQ(add(2, 3), 105);
    base = 0;
    EXPECT_EQ(add(2, 3), 5);
}

TEST(InlineFunction, MoveTransfersOwnership)
{
    int calls = 0;
    InlineFunction<void()> a = [&calls] { ++calls; };
    InlineFunction<void()> b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a));
    ASSERT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(calls, 1);

    InlineFunction<void()> c;
    c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(b));
    c();
    EXPECT_EQ(calls, 2);
}

TEST(InlineFunction, DestructionReleasesCapturedResources)
{
    auto token = std::make_shared<int>(7);
    std::weak_ptr<int> watch = token;
    {
        InlineFunction<int()> f = [t = std::move(token)] { return *t; };
        EXPECT_EQ(f(), 7);
        EXPECT_FALSE(watch.expired());
    }
    EXPECT_TRUE(watch.expired()) << "capture leaked on destruction";
}

TEST(InlineFunction, ResetReleasesAndEmpties)
{
    auto token = std::make_shared<int>(1);
    std::weak_ptr<int> watch = token;
    InlineFunction<int()> f = [t = std::move(token)] { return *t; };
    f.reset();
    EXPECT_FALSE(static_cast<bool>(f));
    EXPECT_TRUE(watch.expired());
}

TEST(InlineFunction, MoveAssignOverwritesExistingCapture)
{
    auto old_token = std::make_shared<int>(1);
    std::weak_ptr<int> old_watch = old_token;
    InlineFunction<int()> f = [t = std::move(old_token)] { return *t; };
    f = InlineFunction<int()>([] { return 42; });
    EXPECT_TRUE(old_watch.expired()) << "old capture must be destroyed";
    EXPECT_EQ(f(), 42);
}

TEST(InlineFunction, FullCapacityCaptureFits)
{
    // A capture exactly at the inline budget must compile and work;
    // anything larger is rejected at compile time by static_assert
    // (cannot be expressed as a runtime test).
    struct Big
    {
        std::byte pad[inlineFunctionCapacity - sizeof(int)];
        int tag;
    };
    Big big{};
    big.tag = 9;
    InlineFunction<int()> f = [big] { return big.tag; };
    static_assert(sizeof(Big) == inlineFunctionCapacity);
    EXPECT_EQ(f(), 9);
}

TEST(InlineFunctionDeath, CallingEmptyPanics)
{
    InlineFunction<void()> f;
    EXPECT_DEATH(f(), "empty InlineFunction");
}
