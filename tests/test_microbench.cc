/**
 * @file
 * Integration tests: the Table II microbenchmark suite across every
 * (configuration x operation) cell, parameterized, with tolerances
 * against the paper's published numbers.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/microbench.hh"
#include "core/testbed.hh"

using namespace virtsim;

namespace {

/** Table II, verbatim. */
const std::map<SutKind, std::map<MicroOp, double>> paper = {
    {SutKind::KvmArm,
     {{MicroOp::Hypercall, 6500},
      {MicroOp::InterruptControllerTrap, 7370},
      {MicroOp::VirtualIpi, 11557},
      {MicroOp::VirtualIrqCompletion, 71},
      {MicroOp::VmSwitch, 10387},
      {MicroOp::IoLatencyOut, 6024},
      {MicroOp::IoLatencyIn, 13872}}},
    {SutKind::XenArm,
     {{MicroOp::Hypercall, 376},
      {MicroOp::InterruptControllerTrap, 1356},
      {MicroOp::VirtualIpi, 5978},
      {MicroOp::VirtualIrqCompletion, 71},
      {MicroOp::VmSwitch, 8799},
      {MicroOp::IoLatencyOut, 16491},
      {MicroOp::IoLatencyIn, 15650}}},
    {SutKind::KvmX86,
     {{MicroOp::Hypercall, 1300},
      {MicroOp::InterruptControllerTrap, 2384},
      {MicroOp::VirtualIpi, 5230},
      {MicroOp::VirtualIrqCompletion, 1556},
      {MicroOp::VmSwitch, 4812},
      {MicroOp::IoLatencyOut, 560},
      {MicroOp::IoLatencyIn, 18923}}},
    {SutKind::XenX86,
     {{MicroOp::Hypercall, 1228},
      {MicroOp::InterruptControllerTrap, 1734},
      {MicroOp::VirtualIpi, 5562},
      {MicroOp::VirtualIrqCompletion, 1464},
      {MicroOp::VmSwitch, 10534},
      {MicroOp::IoLatencyOut, 11262},
      {MicroOp::IoLatencyIn, 10050}}},
};

/** Acceptable relative deviation per cell. Most cells are derived
 *  exactly; the Virtual IPI path is structurally composed from
 *  independently-calibrated primitives and is allowed a wider band
 *  (documented in EXPERIMENTS.md). */
double
tolerance(MicroOp op)
{
    return op == MicroOp::VirtualIpi ? 0.20 : 0.06;
}

using Cell = std::tuple<SutKind, MicroOp>;

class Table2Cell : public ::testing::TestWithParam<Cell>
{
};

} // namespace

TEST_P(Table2Cell, MatchesPaperWithinTolerance)
{
    const auto [kind, op] = GetParam();
    Testbed tb(TestbedConfig{.kind = kind});
    MicrobenchSuite suite(tb);
    const MicroResult r = suite.run(op, 20);
    const double expected = paper.at(kind).at(op);
    EXPECT_NEAR(r.cycles.mean(), expected,
                expected * tolerance(op))
        << to_string(kind) << " / " << to_string(op);
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, Table2Cell,
    ::testing::Combine(::testing::Values(SutKind::KvmArm,
                                         SutKind::XenArm,
                                         SutKind::KvmX86,
                                         SutKind::XenX86),
                       ::testing::ValuesIn(std::vector<MicroOp>(
                           allMicroOps.begin(), allMicroOps.end()))),
    [](const ::testing::TestParamInfo<Cell> &info) {
        std::string n = to_string(std::get<0>(info.param)) + "_" +
                        to_string(std::get<1>(info.param));
        for (char &c : n) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return n;
    });

TEST(Microbench, IterationsAreStable)
{
    // Pinned VCPUs and steered interrupts: repeated operations must
    // cost the same (the variability the paper engineered away).
    Testbed tb(TestbedConfig{.kind = SutKind::KvmArm});
    MicrobenchSuite suite(tb);
    const MicroResult r = suite.run(MicroOp::Hypercall, 30);
    EXPECT_EQ(r.cycles.min(), r.cycles.max());
}

TEST(Microbench, DescriptionsExist)
{
    for (MicroOp op : allMicroOps) {
        EXPECT_FALSE(to_string(op).empty());
        EXPECT_GT(describe(op).size(), 20u);
    }
}

TEST(Microbench, RunAllCoversTheSuite)
{
    Testbed tb(TestbedConfig{.kind = SutKind::XenArm});
    MicrobenchSuite suite(tb);
    const auto all = suite.runAll(5);
    ASSERT_EQ(all.size(), allMicroOps.size());
    for (const auto &r : all)
        EXPECT_EQ(r.cycles.count(), 5u);
}

TEST(Microbench, RequiresVirtualizedTestbed)
{
    Testbed tb(TestbedConfig{.kind = SutKind::Native});
    EXPECT_DEATH(MicrobenchSuite{tb}, "inside a VM");
}
