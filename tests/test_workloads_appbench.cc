/**
 * @file
 * Integration tests for the application-workload models and the
 * Figure 4 machinery — including the paper's headline finding that
 * microbenchmark and application performance do not correlate.
 */

#include <gtest/gtest.h>

#include "core/appbench.hh"
#include "core/workloads/apache.hh"
#include "core/workloads/hackbench.hh"
#include "core/workloads/kernbench.hh"
#include "core/workloads/memcached.hh"
#include "core/workloads/netperf_workloads.hh"

using namespace virtsim;

namespace {

double
overhead(Workload &w, SutKind kind)
{
    AppBenchOptions opt;
    opt.kinds = {kind};
    const AppBenchRow row = runAppBenchRow(w, opt);
    return row.cells.at(0).normalizedOverhead.value_or(-1.0);
}

} // namespace

TEST(Workloads, FactoryOrderMatchesFigure4)
{
    const auto v = figure4Workloads();
    ASSERT_EQ(v.size(), 9u);
    EXPECT_EQ(v[0]->name(), "Kernbench");
    EXPECT_EQ(v[3]->name(), "TCP_RR");
    EXPECT_EQ(v[6]->name(), "Apache");
    EXPECT_EQ(v[8]->name(), "MySQL");
    EXPECT_EQ(standardAppWorkloads().size(), 6u);
}

TEST(Workloads, OnlyApacheTriggersTheDom0Bug)
{
    for (const auto &w : figure4Workloads()) {
        EXPECT_EQ(w->triggersDom0Bug(), w->name() == "Apache")
            << w->name();
    }
}

TEST(Workloads, CpuWorkloadOverheadSmallOnAllHypervisors)
{
    KernbenchWorkload kern;
    for (SutKind k : {SutKind::KvmArm, SutKind::XenArm,
                      SutKind::KvmX86, SutKind::XenX86}) {
        const double o = overhead(kern, k);
        EXPECT_GT(o, 0.97) << to_string(k);
        EXPECT_LT(o, 1.10) << to_string(k);
    }
}

TEST(Workloads, HackbenchIsXenArmsBestCase)
{
    // Section V: Xen's vIPI advantage shows, but "the resulting
    // difference in Hackbench performance overhead is small".
    HackbenchWorkload hack;
    const double kvm = overhead(hack, SutKind::KvmArm);
    const double xen = overhead(hack, SutKind::XenArm);
    EXPECT_LT(xen, kvm);
    EXPECT_LT(kvm - xen, 0.12);
}

TEST(Workloads, ApacheSaturatesVcpu0)
{
    // The Section V bottleneck analysis: under the default
    // single-VCPU interrupt policy, Apache pins VCPU0.
    Testbed tb(TestbedConfig{.kind = SutKind::KvmArm});
    ApacheWorkload apache;
    (void)apache.run(tb);
    const Cycles now = tb.queue().now();
    EXPECT_GT(tb.machine().cpu(0).utilization(now),
              tb.machine().cpu(1).utilization(now));
}

TEST(Workloads, KvmBeatsXenOnNetIoDespiteSlowerTransitions)
{
    // The paper's central result, at the application level.
    TcpRrWorkload rr;
    EXPECT_LT(overhead(rr, SutKind::KvmArm),
              overhead(rr, SutKind::XenArm));
    TcpStreamWorkload stream;
    EXPECT_LT(overhead(stream, SutKind::KvmArm),
              overhead(stream, SutKind::XenArm));
}

TEST(Workloads, DistributingVirqsReducesOverhead)
{
    // E5: the Section V experiment.
    MemcachedWorkload mem;
    AppBenchOptions single;
    single.kinds = {SutKind::KvmArm};
    AppBenchOptions spread = single;
    spread.virqDist = VirqDistribution::Spread;
    const double o_single = runAppBenchRow(mem, single)
                                .cells.at(0)
                                .normalizedOverhead.value();
    const double o_spread = runAppBenchRow(mem, spread)
                                .cells.at(0)
                                .normalizedOverhead.value();
    EXPECT_LT(o_spread, o_single);
}

TEST(AppBench, XenX86ApacheIsNa)
{
    ApacheWorkload apache;
    AppBenchOptions opt;
    opt.kinds = {SutKind::XenX86};
    const AppBenchRow row = runAppBenchRow(apache, opt);
    EXPECT_FALSE(row.cells.at(0).normalizedOverhead.has_value());

    // Disabling the modelled driver bug lets it run.
    opt.dom0MellanoxBug = false;
    const AppBenchRow ok = runAppBenchRow(apache, opt);
    EXPECT_TRUE(ok.cells.at(0).normalizedOverhead.has_value());
}

TEST(AppBench, RowCarriesPerArchNativeBaselines)
{
    MemcachedWorkload mem;
    AppBenchOptions opt;
    opt.kinds = {SutKind::KvmArm, SutKind::KvmX86};
    const AppBenchRow row = runAppBenchRow(mem, opt);
    EXPECT_GT(row.nativeScoreArm, 0.0);
    EXPECT_GT(row.nativeScoreX86, 0.0);
    ASSERT_EQ(row.cells.size(), 2u);
    EXPECT_TRUE(row.cells[0].normalizedOverhead.has_value());
    EXPECT_TRUE(row.cells[1].normalizedOverhead.has_value());
}

TEST(AppBench, MicroAndAppPerformanceDoNotCorrelate)
{
    // Xen ARM's hypercall is ~17x cheaper than KVM ARM's, yet KVM
    // wins the I/O applications: the paper's headline.
    ApacheWorkload apache;
    const double kvm = overhead(apache, SutKind::KvmArm);
    const double xen = overhead(apache, SutKind::XenArm);
    EXPECT_LT(kvm, xen);
}

TEST(Workloads, ScoresAreDeterministic)
{
    MemcachedWorkload mem;
    auto run_once = [&] {
        Testbed tb(TestbedConfig{.kind = SutKind::XenArm});
        return mem.run(tb);
    };
    EXPECT_DOUBLE_EQ(run_once(), run_once());
}
