/**
 * @file
 * Flight-recorder tests: sliding-window retention behind the barrier
 * clock, trigger capture with source merging, overwrite surfacing,
 * incident-export byte-identity across lane counts, the zero-alloc
 * disabled stamp path, and env validation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>

// ---------------------------------------------------------------------
// Allocation counter (the test_latency idiom): the disabled flight
// stamp must be one predicted branch — never an allocation.
// ---------------------------------------------------------------------

namespace {

std::atomic<std::uint64_t> g_news{0};

void *
countedAlloc(std::size_t size)
{
    g_news.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

#include "core/fleet.hh"
#include "sim/env.hh"
#include "sim/flight.hh"
#include "sim/probe.hh"

using namespace virtsim;

namespace {

/** Scoped environment override; restores the prior value on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name(name)
    {
        const char *prev = std::getenv(name);
        if (prev)
            saved = prev;
        had = prev != nullptr;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (had)
            ::setenv(name, saved.c_str(), 1);
        else
            ::unsetenv(name);
    }

  private:
    const char *name;
    std::string saved;
    bool had = false;
};

TraceRecord
rec(Cycles when, TraceKind kind = TraceKind::Instant,
    std::uint16_t track = 0)
{
    static const TapId tap = internTap("test.flight.tap");
    return TraceRecord{when, 0, tap, track, kind, TraceCat::Op};
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

FleetConfig
overloadFleet()
{
    // The FleetSlo overload shape: open-loop arrivals far past the
    // per-CPU service capacity, a tight objective, 1 ms burn windows
    // — every run trips the SLO and freezes at least one incident.
    FleetConfig cfg;
    cfg.nCpus = 4;
    cfg.connsPerCpu = 8;
    cfg.transactionsPerConn = 60;
    cfg.latency = true;
    cfg.openLoop = true;
    cfg.meanInterarrivalUs = 20.0;
    SloSpec spec;
    spec.name = "rtt_p99";
    spec.thresholdCycles = 240000; // 100 us at 2.4 GHz
    spec.maxViolationFraction = 0.01;
    spec.burnWindow = 2400000; // 1 ms windows
    cfg.slos.push_back(spec);
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// Retention
// ---------------------------------------------------------------------

TEST(FlightRetention, EvictsOnTheBarrierClockOnly)
{
    FlightRecorder fr;
    fr.configure(/*windowHalf=*/500, /*period=*/100,
                 /*incidentCap=*/4);
    fr.enable();
    // R = 2W + 8 * period = 1800.
    EXPECT_EQ(fr.retention(), 1800u);

    for (Cycles t = 0; t < 1000; t += 100)
        fr.record(rec(t));
    ASSERT_EQ(fr.retainedRecords(), 10u);

    // A barrier tick inside the retention horizon evicts nothing...
    fr.onSample(1000);
    EXPECT_EQ(fr.retainedRecords(), 10u);

    // ...one far past it drops every record behind now - R.
    fr.onSample(3000);
    EXPECT_EQ(fr.retainedRecords(), 0u);
}

TEST(FlightRetention, OutOfOrderStampsStayUntilStale)
{
    FlightRecorder fr;
    fr.configure(500, 100, 4);
    fr.enable();

    // A young-stamped record written first blocks the tail fast
    // path; the stale records behind it must still go once the
    // segment nears capacity (the compaction path), and the young
    // record itself must survive.
    fr.record(rec(100000));
    const std::size_t fill = FlightRecorder::segCapacity -
                             FlightRecorder::segCapacity / 4 + 8;
    for (std::size_t i = 1; i < fill; ++i)
        fr.record(rec(10));
    ASSERT_EQ(fr.retainedRecords(), fill);

    fr.onSample(50000); // cut = 48200: everything but the young one
    EXPECT_EQ(fr.retainedRecords(), 1u);
}

// ---------------------------------------------------------------------
// Trigger capture
// ---------------------------------------------------------------------

TEST(FlightCapture, FreezesWindowAroundTriggerAndMergesSources)
{
    FlightRecorder fr;
    fr.configure(500, 100, 4);
    fr.enable();

    fr.record(rec(1400)); // outside [1500, 2500]
    fr.record(rec(1600));
    fr.record(rec(2400));
    fr.record(rec(2600)); // outside

    fr.trigger(2000, "slo.rtt_p99.burn");
    fr.onAnomaly(2000, "slo.rtt_p99", true);
    fr.trigger(2000, "slo.rtt_p99.burn"); // duplicate: deduped

    // The window's post-trigger half has not elapsed yet.
    fr.onSample(2100);
    EXPECT_EQ(fr.incidentCount(), 0u);

    fr.onSample(2600);
    ASSERT_EQ(fr.incidentCount(), 1u);
    const FlightIncident &inc = fr.incident(0);
    EXPECT_EQ(inc.triggerAt, 2000u);
    EXPECT_EQ(inc.begin, 1500u);
    EXPECT_EQ(inc.end, 2500u);
    EXPECT_FALSE(inc.clipped);
    EXPECT_FALSE(inc.truncated);
    EXPECT_EQ(inc.records.size(), 2u);
    ASSERT_EQ(inc.sources.size(), 2u); // sorted, deduplicated
    EXPECT_EQ(inc.sources[0], "slo.rtt_p99.burn");
    EXPECT_EQ(inc.sources[1], "watchdog.slo.rtt_p99.open");

    const std::string json =
        fr.renderIncidentJson(0, Frequency(2.4), "test");
    EXPECT_NE(json.find("\"schema\":\"virtsim-incident-1\""),
              std::string::npos);
    EXPECT_NE(json.find("slo.rtt_p99.burn"), std::string::npos);
    EXPECT_NE(json.find("\"blame_diff\""), std::string::npos);
}

TEST(FlightCapture, FinalizeClipsPendingWindows)
{
    FlightRecorder fr;
    fr.configure(500, 100, 4);
    fr.enable();
    fr.record(rec(1900));
    fr.trigger(2000, "watchdog.x.open");
    fr.finalize(2200); // run ended before 2500
    ASSERT_EQ(fr.incidentCount(), 1u);
    EXPECT_TRUE(fr.incident(0).clipped);
    EXPECT_EQ(fr.incident(0).end, 2200u);
    EXPECT_EQ(fr.incident(0).records.size(), 1u);
}

TEST(FlightCapture, CapCountsDroppedTriggers)
{
    FlightRecorder fr;
    fr.configure(500, 100, /*incidentCap=*/2);
    fr.enable();
    fr.trigger(1000, "a");
    fr.trigger(2000, "b");
    fr.trigger(3000, "c"); // past the cap
    fr.trigger(3000, "d"); // merges would exceed too: dropped
    EXPECT_EQ(fr.incidentsDropped(), 2u);
    fr.finalize(4000);
    EXPECT_EQ(fr.incidentCount(), 2u);
}

TEST(FlightCapture, RingOverwriteSurfacesAsTruncated)
{
    FlightRecorder fr;
    fr.configure(500, 100, 4);
    fr.enable();
    // One segment holds segCapacity records; pushing past that with
    // in-window stamps forces overwrites which must mark the window.
    for (std::size_t i = 0; i < FlightRecorder::segCapacity + 64; ++i)
        fr.record(rec(5000));
    fr.trigger(5000, "watchdog.x.open");
    fr.onSample(5600);
    ASSERT_EQ(fr.incidentCount(), 1u);
    EXPECT_TRUE(fr.incident(0).truncated);
}

// ---------------------------------------------------------------------
// Fleet integration: determinism and export
// ---------------------------------------------------------------------

TEST(FlightFleet, IncidentReportsByteIdenticalAcrossLaneCounts)
{
    const std::string dir = ::testing::TempDir() + "flight_inc";
    const std::string file = dir + "/incident.fleet.000.json";
    ScopedEnv e("VIRTSIM_INCIDENTS", dir.c_str());
    const FleetConfig cfg = overloadFleet();

    std::remove(file.c_str());
    const FleetResult serial = runNetperfRrFleet(cfg, 1);
    const std::string ref = slurp(file);
    ASSERT_FALSE(ref.empty());
    EXPECT_NE(ref.find("\"schema\":\"virtsim-incident-1\""),
              std::string::npos);
    EXPECT_NE(ref.find("slo.rtt_p99"), std::string::npos);
    // A saturated fleet has a nonempty latency-critical chain.
    EXPECT_EQ(ref.find("\"steps\":[]"), std::string::npos);

    for (int lanes : {8, 64}) {
        std::remove(file.c_str());
        const FleetResult r = runNetperfRrFleet(cfg, lanes);
        EXPECT_TRUE(serial.sameModelledResult(r))
            << "lanes=" << lanes;
        EXPECT_EQ(slurp(file), ref) << "lanes=" << lanes;
    }
    std::remove(file.c_str());
}

// ---------------------------------------------------------------------
// Fast path
// ---------------------------------------------------------------------

TEST(FlightFastPath, DisabledStampAllocatesNothing)
{
    FlightRecorder fr; // never enabled
    const TraceRecord r = rec(123);
    const std::uint64_t before = g_news.load();
    for (int i = 0; i < 4096; ++i)
        fr.record(r);
    EXPECT_EQ(g_news.load(), before);
    EXPECT_EQ(fr.retainedRecords(), 0u);
}

TEST(FlightFastPath, EnabledStampAllocatesNothing)
{
    FlightRecorder fr;
    fr.configure(500, 100, 4);
    fr.enable();
    const TraceRecord r = rec(123);
    fr.record(r); // first touch
    const std::uint64_t before = g_news.load();
    for (int i = 0; i < 4096; ++i)
        fr.record(r);
    EXPECT_EQ(g_news.load(), before);
}

// ---------------------------------------------------------------------
// Environment validation
// ---------------------------------------------------------------------

TEST(FlightEnvDeath, RejectsGarbageWindowAndCap)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    {
        ScopedEnv e("VIRTSIM_INCIDENT_WINDOW_US", "banana");
        EXPECT_DEATH(
            (void)envPositiveReal("VIRTSIM_INCIDENT_WINDOW_US"),
            "must be a positive number");
    }
    {
        ScopedEnv e("VIRTSIM_INCIDENT_WINDOW_US", "0");
        EXPECT_DEATH(
            (void)envPositiveReal("VIRTSIM_INCIDENT_WINDOW_US"),
            "must be positive");
    }
    {
        ScopedEnv e("VIRTSIM_INCIDENT_CAP", "-1");
        EXPECT_DEATH(
            (void)envPositiveCount("VIRTSIM_INCIDENT_CAP"),
            "must be a positive integer");
    }
    // The armed fleet world reads both through the same validators:
    // garbage is fatal at construction, not at first incident.
    {
        ScopedEnv inc("VIRTSIM_INCIDENTS",
                      (::testing::TempDir() + "flight_env").c_str());
        ScopedEnv w("VIRTSIM_INCIDENT_WINDOW_US", "nope");
        FleetConfig cfg = overloadFleet();
        cfg.transactionsPerConn = 2;
        EXPECT_DEATH((void)runNetperfRrFleet(cfg, 1),
                     "VIRTSIM_INCIDENT_WINDOW_US");
    }
}

TEST(FlightEnv, ParsesCleanValues)
{
    ScopedEnv w("VIRTSIM_INCIDENT_WINDOW_US", "250.5");
    ScopedEnv c("VIRTSIM_INCIDENT_CAP", "8");
    EXPECT_EQ(envPositiveReal("VIRTSIM_INCIDENT_WINDOW_US").value(),
              250.5);
    EXPECT_EQ(envPositiveCount("VIRTSIM_INCIDENT_CAP").value(), 8u);
}
