/**
 * @file
 * Tests for the split-mode KVM ARM model: transition state machine,
 * emergent Table II costs, injection paths, and state isolation
 * between guest and host.
 */

#include <gtest/gtest.h>

#include "core/testbed.hh"

using namespace virtsim;

namespace {

struct KvmArmFixture : public ::testing::Test
{
    KvmArmFixture() : tb(TestbedConfig{.kind = SutKind::KvmArm})
    {
        kvm = dynamic_cast<KvmArm *>(tb.hypervisor());
    }

    Testbed tb;
    KvmArm *kvm = nullptr;
};

} // namespace

TEST_F(KvmArmFixture, IdentifiesAsType2)
{
    ASSERT_NE(kvm, nullptr);
    EXPECT_EQ(kvm->name(), "KVM ARM");
    EXPECT_EQ(kvm->type(), HvType::Type2);
    EXPECT_EQ(to_string(kvm->type()), "Type 2");
}

TEST_F(KvmArmFixture, HypercallCosts6500Cycles)
{
    Vcpu &v = tb.guest()->vcpu(0);
    Cycles done_at = 0;
    kvm->hypercall(0, v, [&](Cycles t) { done_at = t; });
    tb.run();
    EXPECT_EQ(done_at, 6500u); // Table II, emergent
}

TEST_F(KvmArmFixture, ExitAndEnterSplitPerTable3)
{
    Vcpu &v = tb.guest()->vcpu(0);
    const Cycles exit = kvm->exitToHost(0, v);
    // trap + dispatch + full save (4,202) + toggle + eret
    EXPECT_EQ(exit, 12u + 260u + 4202u + 60u + 12u);
    const Cycles enter = kvm->enterVm(exit, v);
    EXPECT_EQ(enter - exit, 12u + 260u + 1506u + 60u + 12u);
}

TEST_F(KvmArmFixture, ExitRequiresRunningVcpu)
{
    Vcpu &v = tb.guest()->vcpu(0);
    kvm->exitToHost(0, v);
    EXPECT_DEATH(kvm->exitToHost(100, v), "not running");
}

TEST_F(KvmArmFixture, EnterRequiresFreePcpu)
{
    Vcpu &v = tb.guest()->vcpu(0);
    EXPECT_DEATH(kvm->enterVm(0, v), "already in a VM");
}

TEST_F(KvmArmFixture, GuestStateSurvivesHypercalls)
{
    Vcpu &v = tb.guest()->vcpu(0);
    tb.machine().cpu(0).regs().fillPattern(0x60e57);
    bool checked = false;
    kvm->hypercall(0, v, [&](Cycles) {
        checked = tb.machine().cpu(0).regs().matchesPattern(0x60e57);
    });
    tb.run();
    EXPECT_TRUE(checked);
}

TEST_F(KvmArmFixture, IrqControllerTrapCosts7370)
{
    Vcpu &v = tb.guest()->vcpu(0);
    Cycles done_at = 0;
    kvm->irqControllerTrap(0, v, [&](Cycles t) { done_at = t; });
    tb.run();
    EXPECT_EQ(done_at, 7370u); // Table II
}

TEST_F(KvmArmFixture, VirqCompletionIsTheArmFastPath)
{
    Vcpu &v = tb.guest()->vcpu(0);
    tb.machine().gic().injectVirq(0, v.pcpu(), spiNicIrq);
    tb.machine().gic().guestAckVirq(v.pcpu());
    Cycles done_at = 0;
    kvm->virqComplete(0, v, [&](Cycles t) { done_at = t; });
    tb.run();
    EXPECT_EQ(done_at, 71u); // Table II: no trap
    EXPECT_EQ(tb.machine().stats().counterValue("kvm.vm_exits"), 0u);
}

TEST_F(KvmArmFixture, InjectToRunningVcpuUsesKick)
{
    Vcpu &v = tb.guest()->vcpu(1);
    Cycles handled = 0;
    kvm->injectVirq(0, v, spiNicIrq, [&](Cycles t) { handled = t; });
    tb.run();
    EXPECT_GT(handled, 0u);
    // Kick = SGI + full exit + re-entry on the target.
    EXPECT_EQ(tb.machine().stats().counterValue("irqchip.ipi_sent"),
              1u);
    EXPECT_EQ(tb.machine().stats().counterValue("kvm.vm_exits"), 1u);
    EXPECT_EQ(tb.machine().stats().counterValue("kvm.vm_entries"), 1u);
}

TEST_F(KvmArmFixture, InjectToIdleVcpuPaysWakePath)
{
    Vcpu &v = tb.guest()->vcpu(1);
    kvm->blockVcpu(v);
    EXPECT_EQ(v.state(), VcpuState::Idle);
    Cycles handled = 0;
    kvm->injectVirq(0, v, spiNicIrq, [&](Cycles t) { handled = t; });
    tb.run();
    // Wake path: vcpuWakeFromIdle dominates; no SGI needed.
    EXPECT_GT(handled, kvm->params.vcpuWakeFromIdle);
    EXPECT_EQ(tb.machine().stats().counterValue("irqchip.ipi_sent"),
              0u);
    EXPECT_EQ(v.state(), VcpuState::Running);
}

TEST_F(KvmArmFixture, VmSwitchMatchesTable2)
{
    Vm &vm1 = kvm->createVm("vm1", 4, {0, 1, 2, 3});
    Cycles done_at = 0;
    kvm->vmSwitch(0, tb.guest()->vcpu(0), vm1.vcpu(0),
                  [&](Cycles t) { done_at = t; });
    tb.run();
    EXPECT_EQ(done_at, 10387u); // Table II
}

TEST_F(KvmArmFixture, VmSwitchIsolatesRegisterState)
{
    Vm &vm1 = kvm->createVm("vm1", 4, {0, 1, 2, 3});
    auto sig = [](std::uint64_t tag) {
        return std::vector<std::uint64_t>(RegFile::bankSize(RegClass::Gp),
                                          tag);
    };
    vm1.vcpu(0).savedRegs().bank(RegClass::Gp) = sig(0xb);
    tb.machine().cpu(0).regs().bank(RegClass::Gp) = sig(0xa);

    bool vm1_ok = false, vm0_ok = false;
    kvm->vmSwitch(0, tb.guest()->vcpu(0), vm1.vcpu(0), [&](Cycles t) {
        vm1_ok =
            tb.machine().cpu(0).regs().bank(RegClass::Gp) == sig(0xb);
        kvm->vmSwitch(t, vm1.vcpu(0), tb.guest()->vcpu(0),
                      [&](Cycles) {
                          vm0_ok = tb.machine()
                                       .cpu(0)
                                       .regs()
                                       .bank(RegClass::Gp) == sig(0xa);
                      });
    });
    tb.run();
    EXPECT_TRUE(vm1_ok);
    EXPECT_TRUE(vm0_ok);
}

TEST_F(KvmArmFixture, IoSignalsMatchTable2)
{
    Vcpu &v = tb.guest()->vcpu(0);
    Cycles out_at = 0;
    kvm->ioSignalOut(0, v, [&](Cycles t) { out_at = t; });
    tb.run();
    EXPECT_EQ(out_at, 6024u); // Table II

    kvm->blockVcpu(v);
    // Measure from the VCPU's quiescent point (its frontier), as the
    // microbenchmark driver does.
    const Cycles t0 = tb.frontier(0);
    Cycles in_at = 0;
    kvm->ioSignalIn(t0, v, [&](Cycles t) { in_at = t; });
    tb.run();
    EXPECT_EQ(in_at - t0, 13872u); // Table II
}

TEST_F(KvmArmFixture, TransmitSuppressesKicksWhilePumping)
{
    Vcpu &v = tb.guest()->vcpu(0);
    for (int i = 0; i < 8; ++i) {
        Packet p;
        p.flow = 1;
        p.bytes = 1500;
        p.seq = static_cast<std::uint64_t>(i + 1);
        kvm->guestTransmit(tb.queue().now(), v, p, [](Cycles) {});
    }
    tb.run();
    EXPECT_EQ(tb.machine().stats().counterValue("nic.tx_packets"), 8u);
    EXPECT_GT(
        tb.machine().stats().counterValue("kvm.tx_kick_suppressed"),
        0u);
    // Far fewer exits than packets: notification suppression works.
    EXPECT_LT(tb.machine().stats().counterValue("kvm.vm_exits"), 8u);
}

TEST_F(KvmArmFixture, DeliverPacketReachesGuestDriver)
{
    Packet p;
    p.flow = 9;
    p.bytes = 1500;
    Cycles vm_rx = 0;
    tb.onVmRx = [&](Cycles t, const Packet &pkt) {
        EXPECT_EQ(pkt.flow, 9u);
        vm_rx = t;
    };
    tb.setIdle(0, true);
    kvm->deliverPacketToVm(1000, *tb.guest(), p, [](Cycles) {});
    tb.run();
    EXPECT_GT(vm_rx, 1000u);
    // The idle netserver was woken through the expensive path.
    EXPECT_EQ(tb.guest()->vcpu(0).state(), VcpuState::Running);
}
