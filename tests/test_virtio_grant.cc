/**
 * @file
 * Tests for the two paravirtual I/O transports the paper contrasts:
 * virtio rings with zero-copy host access (KVM), and Xen PV rings
 * with grant-mediated isolation.
 */

#include <gtest/gtest.h>

#include "hv/grant_table.hh"
#include "hv/virtio.hh"
#include "hv/xen_pv.hh"
#include "hw/machine.hh"

using namespace virtsim;

namespace {

struct IoFixture : public ::testing::Test
{
    EventQueue eq;
    Machine m{eq, MachineConfig::hpMoonshotM400()};
    Vm guest{1, "vm0", VmKind::Guest, 4, {0, 1, 2, 3}};
};

} // namespace

TEST_F(IoFixture, VirtioRoundTrip)
{
    VirtioQueue q(m, guest, 4);
    VirtioDesc d;
    d.buf = m.memory().alloc("vm0", 2048);
    EXPECT_GT(q.guestPost(d), 0u);
    EXPECT_EQ(q.availDepth(), 1u);

    bool ok = false;
    VirtioDesc popped;
    EXPECT_GT(q.hostPop(popped, ok), 0u);
    ASSERT_TRUE(ok);
    EXPECT_EQ(popped.buf, d.buf);

    q.hostPushUsed(popped);
    VirtioDesc used;
    q.guestPopUsed(used, ok);
    ASSERT_TRUE(ok);
    EXPECT_EQ(used.buf, d.buf);
}

TEST_F(IoFixture, VirtioEmptyPopsFail)
{
    VirtioQueue q(m, guest);
    bool ok = true;
    VirtioDesc d;
    EXPECT_EQ(q.hostPop(d, ok), 0u);
    EXPECT_FALSE(ok);
    ok = true;
    EXPECT_EQ(q.guestPopUsed(d, ok), 0u);
    EXPECT_FALSE(ok);
}

TEST_F(IoFixture, VirtioRejectsForeignBuffers)
{
    // The guest can only post its own memory; the reverse property
    // (the host reading guest buffers) needs no grant — that IS the
    // zero-copy asymmetry.
    VirtioQueue q(m, guest);
    VirtioDesc d;
    d.buf = m.memory().alloc("host", 2048);
    EXPECT_DEATH(q.guestPost(d), "does not own");
}

TEST_F(IoFixture, VirtioOverflowPanics)
{
    VirtioQueue q(m, guest, 1);
    VirtioDesc d;
    q.guestPost(d);
    EXPECT_TRUE(q.availFull());
    EXPECT_DEATH(q.guestPost(d), "overflow");
}

TEST_F(IoFixture, GrantLifecycle)
{
    GrantTable gt(m, guest);
    const BufferId buf = m.memory().alloc("vm0", 4096);
    const GrantRef ref = gt.grant(buf, false);
    EXPECT_EQ(gt.activeGrants(), 1u);
    EXPECT_FALSE(gt.isMapped(ref));

    EXPECT_GT(gt.map(ref), 0u);
    EXPECT_TRUE(gt.isMapped(ref));
    EXPECT_GT(gt.unmap(ref), 0u);
    EXPECT_FALSE(gt.isMapped(ref));
    gt.end(ref);
    EXPECT_EQ(gt.activeGrants(), 0u);
}

TEST_F(IoFixture, GrantCopyPaysOver3usEvenForOneByte)
{
    // Table V analysis: "Each data copy incurs more than 3 us of
    // additional latency ... even though only a single byte of data
    // needs to be copied."
    GrantTable gt(m, guest);
    const BufferId buf = m.memory().alloc("vm0", 4096);
    const GrantRef ref = gt.grant(buf, true);
    const Cycles one_byte = gt.copy(ref, 1);
    EXPECT_GT(m.freq().us(one_byte), 3.0);
}

TEST_F(IoFixture, GrantUnmapIncludesTlbMaintenance)
{
    GrantTable gt(m, guest);
    const BufferId buf = m.memory().alloc("vm0", 4096);
    const GrantRef ref = gt.grant(buf, false);
    gt.map(ref);
    const Cycles unmap = gt.unmap(ref);
    EXPECT_GE(unmap, gt.grantUnmapFixedCost() +
                         m.costs().tlbInvalidateBroadcast);
    EXPECT_EQ(m.stats().counterValue("mmu.broadcast_invalidate"), 1u);
}

TEST_F(IoFixture, GrantRejectsForeignBuffer)
{
    GrantTable gt(m, guest);
    const BufferId buf = m.memory().alloc("dom0", 4096);
    EXPECT_DEATH(gt.grant(buf, false), "does not own");
}

TEST_F(IoFixture, GrantDeathOnMisuse)
{
    GrantTable gt(m, guest);
    const BufferId buf = m.memory().alloc("vm0", 4096);
    const GrantRef ref = gt.grant(buf, false);
    EXPECT_DEATH(gt.unmap(ref), "unmapped");
    gt.map(ref);
    EXPECT_DEATH(gt.map(ref), "double map");
    EXPECT_DEATH(gt.end(ref), "still mapped");
}

TEST_F(IoFixture, PvRingRoundTripWithResponses)
{
    XenPvRing ring(m, 8);
    GrantTable gt(m, guest);
    const BufferId buf = m.memory().alloc("vm0", 4096);
    PvRequest req;
    req.gref = gt.grant(buf, true);
    req.pkt.bytes = 1500;

    EXPECT_GT(ring.frontPost(req), 0u);
    bool ok = false;
    PvRequest got;
    EXPECT_GT(ring.backPop(got, ok), 0u);
    ASSERT_TRUE(ok);
    EXPECT_EQ(got.gref, req.gref);

    ring.backRespond(got);
    PvRequest resp;
    ring.frontPopResponse(resp, ok);
    ASSERT_TRUE(ok);
    EXPECT_EQ(ring.requestDepth(), 0u);
    EXPECT_EQ(ring.responseDepth(), 0u);
}

TEST_F(IoFixture, EventChannelPendingSemantics)
{
    EventChannel ec(m);
    const int port = ec.allocate();
    EXPECT_FALSE(ec.pending(port));
    EXPECT_GT(ec.notify(port), 0u);
    EXPECT_TRUE(ec.pending(port));
    EXPECT_TRUE(ec.consume(port));
    EXPECT_FALSE(ec.consume(port)); // already consumed
}

/** Property: grant copy cost = fixed + linear-in-KiB memcpy. */
class GrantCopyCostTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(GrantCopyCostTest, FixedPlusLinear)
{
    EventQueue eq;
    Machine m(eq, MachineConfig::hpMoonshotM400());
    Vm guest(1, "vm0", VmKind::Guest, 1, {0});
    GrantTable gt(m, guest);
    const BufferId buf = m.memory().alloc("vm0", 65536);
    const GrantRef ref = gt.grant(buf, true);
    const std::uint32_t bytes = GetParam();
    const std::uint32_t kib = (bytes + 1023) / 1024;
    EXPECT_EQ(gt.copy(ref, bytes),
              gt.grantCopyFixedCost() +
                  (kib ? kib : 1) * m.costs().copyPerKb);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GrantCopyCostTest,
                         ::testing::Values(1u, 1024u, 1500u, 4096u,
                                           65536u));
