/**
 * @file
 * Tests for the OS-level I/O backends: vhost (KVM) and netback
 * (Xen), plus the netstack cost model and the trace/report helpers.
 */

#include <gtest/gtest.h>

#include "core/figure.hh"
#include "core/report.hh"
#include "os/netback.hh"
#include "os/netstack.hh"
#include "os/vhost.hh"
#include "sim/probe.hh"

using namespace virtsim;

namespace {

struct BackendFixture : public ::testing::Test
{
    EventQueue eq;
    Machine m{eq, MachineConfig::hpMoonshotM400()};
    Vm guest{1, "vm0", VmKind::Guest, 4, {0, 1, 2, 3}};
    Vm dom0{0, "dom0", VmKind::Dom0, 4, {4, 5, 6, 7}};
    NetstackCosts net = NetstackCosts::linux(m.freq());

    Packet
    pkt(std::uint32_t bytes, std::uint64_t flow = 1)
    {
        Packet p;
        p.flow = flow;
        p.bytes = bytes;
        return p;
    }
};

} // namespace

TEST(NetstackCosts, NativeRecvToSendBudget)
{
    // The Table V anchor: irq + rx + wake + echo + tx + doorbell
    // must land near 14.5 us natively (echo is charged by netperf).
    const Frequency f(2.4);
    const NetstackCosts c = NetstackCosts::linux(f);
    const double us = f.us(c.irqPath + c.rxStack + c.socketWake +
                           c.txStack + c.doorbell) +
                      1.75 /* appEchoUs */;
    EXPECT_NEAR(us, 14.5, 0.8);
}

TEST(NetstackCosts, RegressedTsoIsMuchSmaller)
{
    const NetstackCosts c = NetstackCosts::linux(Frequency(2.4));
    EXPECT_GE(c.tsoBytes / c.tsoBytesRegressed, 16u);
}

TEST_F(BackendFixture, VhostRxDeliversThroughWorker)
{
    VhostBackend::Params vp;
    VhostBackend vhost(m, guest, net, vp);
    for (int i = 0; i < 4; ++i) {
        VirtioDesc d;
        d.buf = m.memory().alloc("vm0", 2048);
        vhost.rxRing().guestPost(d);
    }
    Cycles ready_at = 0;
    vhost.hostRxToGuest(1000, pkt(1500), true,
                        [&](Cycles t) { ready_at = t; });
    eq.run();
    EXPECT_GT(ready_at, 1000u);
    // Work split across the IRQ CPU and the worker CPU.
    EXPECT_GT(m.cpu(vp.hostIrqPcpu).busyCycles(), 0u);
    EXPECT_GT(m.cpu(vp.workerPcpu).busyCycles(), 0u);
    EXPECT_EQ(vhost.rxRing().usedDepth(), 1u);
}

TEST_F(BackendFixture, VhostRxDropsWithoutDescriptors)
{
    VhostBackend::Params vp;
    VhostBackend vhost(m, guest, net, vp);
    bool delivered = false;
    vhost.hostRxToGuest(0, pkt(1500), true,
                        [&](Cycles) { delivered = true; });
    eq.run();
    EXPECT_FALSE(delivered);
    EXPECT_EQ(m.stats().counterValue("vhost.rx_no_descriptor"), 1u);
}

TEST_F(BackendFixture, VhostRxJobsSerializeOnWorker)
{
    VhostBackend::Params vp;
    VhostBackend vhost(m, guest, net, vp);
    for (int i = 0; i < 8; ++i) {
        VirtioDesc d;
        d.buf = m.memory().alloc("vm0", 2048);
        vhost.rxRing().guestPost(d);
    }
    std::vector<Cycles> readies;
    for (int i = 0; i < 8; ++i) {
        vhost.hostRxToGuest(0, pkt(1500), true, [&](Cycles t) {
            readies.push_back(t);
        });
    }
    eq.run();
    ASSERT_EQ(readies.size(), 8u);
    for (std::size_t i = 1; i < readies.size(); ++i)
        EXPECT_GT(readies[i], readies[i - 1]);
}

TEST_F(BackendFixture, NetbackRxGrantCopiesPerFrame)
{
    NetbackBackend::Params np;
    NetbackBackend nb(m, dom0, guest, net, np);
    for (int i = 0; i < 32; ++i) {
        PvRequest req;
        const BufferId buf = m.memory().alloc("vm0", 4096);
        req.gref = nb.grantTable().grant(buf, false);
        nb.rxRing().frontPost(req);
    }
    Cycles ready_at = 0;
    // A 3-frame GRO aggregate needs three grant transfers.
    nb.dom0RxToDomU(0, pkt(4500), true,
                    [&](Cycles t) { ready_at = t; });
    eq.run();
    EXPECT_GT(ready_at, 0u);
    EXPECT_EQ(m.stats().counterValue("grant.copies") +
                  m.stats().counterValue("grant.copies_batched"),
              3u);
    EXPECT_EQ(nb.rxRing().responseDepth(), 3u);
}

TEST_F(BackendFixture, NetbackPartialDeliveryOnRingExhaustion)
{
    NetbackBackend::Params np;
    NetbackBackend nb(m, dom0, guest, net, np);
    // Only two rx slots for a three-frame aggregate.
    for (int i = 0; i < 2; ++i) {
        PvRequest req;
        const BufferId buf = m.memory().alloc("vm0", 4096);
        req.gref = nb.grantTable().grant(buf, false);
        nb.rxRing().frontPost(req);
    }
    bool delivered = false;
    nb.dom0RxToDomU(0, pkt(4500), true,
                    [&](Cycles) { delivered = true; });
    eq.run();
    EXPECT_TRUE(delivered); // what was copied still flows
    EXPECT_EQ(m.stats().counterValue("netback.rx_no_request"), 1u);
    EXPECT_EQ(nb.rxRing().responseDepth(), 2u);
}

TEST_F(BackendFixture, NetbackTxChargesDom0AndEmitsFrame)
{
    NetbackBackend::Params np;
    NetbackBackend nb(m, dom0, guest, net, np);
    const BufferId buf = m.memory().alloc("vm0", 2048);
    PvRequest req;
    req.gref = nb.grantTable().grant(buf, true);
    req.pkt = pkt(1500);
    nb.txRing().frontPost(req);
    Cycles tx_at = 0;
    nb.domUTx(0, [&](Cycles t, const Packet &p) {
        tx_at = t;
        EXPECT_EQ(p.bytes, 1500u);
    });
    eq.run();
    EXPECT_GT(tx_at, 0u);
    EXPECT_GT(m.cpu(np.dom0Pcpu).busyCycles(), 0u);
}

TEST(TraceSink, StampsAndIntervals)
{
    const TapId recv = internTap("test.recv");
    const TapId send = internTap("test.send");
    TraceSink sink;
    sink.stamp(10, 1, recv); // disabled: dropped
    sink.enable();
    sink.stamp(100, 1, recv);
    sink.stamp(150, 1, send);
    sink.stamp(120, 2, recv);
    EXPECT_EQ(sink.size(), 3u);
    EXPECT_EQ(sink.find(1, recv).value(), 100u);
    EXPECT_EQ(sink.between(1, recv, send).value(), 50u);
    EXPECT_FALSE(sink.between(1, send, recv).has_value());
    EXPECT_FALSE(sink.find(3, recv).has_value());
    sink.clear();
    EXPECT_EQ(sink.size(), 0u);
}

TEST(TraceSink, BetweenPairsNearestFollowingStamp)
{
    // Regression: a retried transaction stamps the same taps twice.
    // `between` must pair the first `from` with the nearest
    // *following* `to`, not a stale earlier one or the global first.
    const TapId from = internTap("test.pair.from");
    const TapId to = internTap("test.pair.to");
    TraceSink sink;
    sink.enable();
    sink.stamp(50, 7, to);    // stale `to` before any `from`
    sink.stamp(100, 7, from);
    sink.stamp(130, 7, to);   // the causal partner
    sink.stamp(200, 7, from); // retry pair, must be ignored
    sink.stamp(260, 7, to);
    EXPECT_EQ(sink.between(7, from, to).value(), 30u);
}

TEST(Report, TextTableAlignsAndCounts)
{
    TextTable t({"Name", "Value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    EXPECT_EQ(t.rows(), 2u);
    const std::string out = t.render();
    EXPECT_NE(out.find("Name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(ReportDeath, RowWidthMismatchPanics)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

TEST(Report, Formatting)
{
    EXPECT_EQ(formatCycles(6500), "6,500");
    EXPECT_EQ(formatCycles(71), "71");
    EXPECT_EQ(formatCycles(11557), "11,557");
    EXPECT_EQ(formatCycles(1234567), "1,234,567");
    EXPECT_EQ(formatFixed(1.347, 2), "1.35");
    EXPECT_EQ(formatDelta(110, 100), "+10.0%");
    EXPECT_EQ(formatDelta(95, 100), "-5.0%");
    EXPECT_EQ(formatDelta(1, 0), "n/a");
}

TEST(Report, CsvRendering)
{
    TextTable t({"Name", "Value"});
    t.addRow({"plain", "1"});
    t.addRow({"with,comma", "quote\"inside"});
    const std::string csv = t.renderCsv();
    EXPECT_NE(csv.find("Name,Value\n"), std::string::npos);
    EXPECT_NE(csv.find("plain,1\n"), std::string::npos);
    EXPECT_NE(csv.find("\"with,comma\",\"quote\"\"inside\"\n"),
              std::string::npos);
}

TEST(Figure, BarsScaleClipAndLabel)
{
    BarFigure fig({"A", "B"}, 2.0, 10);
    EXPECT_EQ(fig.renderBar(1.0).size(), 5u);
    EXPECT_EQ(fig.renderBar(2.0).size(), 10u);
    // Over-scale bars clip with a marker, like the paper's axis.
    const std::string clipped = fig.renderBar(4.0);
    EXPECT_EQ(clipped.size(), 10u);
    EXPECT_EQ(clipped.back(), '>');

    fig.addGroup("workload", {1.5, std::nullopt});
    const std::string out = fig.render();
    EXPECT_NE(out.find("workload"), std::string::npos);
    EXPECT_NE(out.find("N/A"), std::string::npos);
    EXPECT_NE(out.find("1.50"), std::string::npos);
    EXPECT_EQ(fig.groups(), 1u);
}

TEST(FigureDeath, GroupWidthMismatchPanics)
{
    BarFigure fig({"A", "B"}, 2.0);
    EXPECT_DEATH(fig.addGroup("w", {1.0}), "group width");
}
