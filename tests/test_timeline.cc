/**
 * @file
 * Tests for the simulated-time telemetry subsystem (sim/timeline):
 * gauge sampling, change deduplication, rate gauges, the anomaly
 * watchdog, reset semantics, export determinism across sweep widths
 * and Testbed::reset(), env-knob validation, and the zero-allocation
 * guarantee of the sampling paths.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/microbench.hh"
#include "core/netperf.hh"
#include "core/testbed.hh"
#include "sim/event_queue.hh"
#include "sim/probe.hh"
#include "sim/sweep.hh"
#include "sim/timeline.hh"

// ---------------------------------------------------------------------
// Binary-wide allocation counter (same idiom as test_probe): the
// disabled sampling path must be one predictable branch, and an
// enabled sampler in steady state must only touch its preallocated
// buffers. Counting every operator new proves both.
// ---------------------------------------------------------------------

namespace {

std::atomic<std::uint64_t> g_news{0};

void *
countedAlloc(std::size_t size)
{
    g_news.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

using namespace virtsim;

namespace {

/** Minimal JSON well-formedness checker (structure only): enough to
 *  prove the exporter emits something a real parser will accept. */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s(text) {}

    bool
    valid()
    {
        pos = 0;
        const bool ok = value();
        skipWs();
        return ok && pos == s.size();
    }

  private:
    bool
    value()
    {
        skipWs();
        if (pos >= s.size())
            return false;
        switch (s[pos]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          default:
            return literal();
        }
    }

    bool
    object()
    {
        ++pos; // '{'
        skipWs();
        if (pos < s.size() && s[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (pos >= s.size() || s[pos] != ':')
                return false;
            ++pos;
            if (!value())
                return false;
            skipWs();
            if (pos < s.size() && s[pos] == ',') {
                ++pos;
                continue;
            }
            break;
        }
        if (pos >= s.size() || s[pos] != '}')
            return false;
        ++pos;
        return true;
    }

    bool
    array()
    {
        ++pos; // '['
        skipWs();
        if (pos < s.size() && s[pos] == ']') {
            ++pos;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            skipWs();
            if (pos < s.size() && s[pos] == ',') {
                ++pos;
                continue;
            }
            break;
        }
        if (pos >= s.size() || s[pos] != ']')
            return false;
        ++pos;
        return true;
    }

    bool
    string()
    {
        if (pos >= s.size() || s[pos] != '"')
            return false;
        ++pos;
        while (pos < s.size() && s[pos] != '"') {
            if (s[pos] == '\\')
                ++pos;
            ++pos;
        }
        if (pos >= s.size())
            return false;
        ++pos;
        return true;
    }

    bool
    literal()
    {
        const std::size_t start = pos;
        while (pos < s.size() &&
               (std::isalnum(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '-' || s[pos] == '+' || s[pos] == '.')) {
            ++pos;
        }
        return pos > start;
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos]))) {
            ++pos;
        }
    }

    std::string s;
    std::size_t pos = 0;
};

/** Keep the event queue alive for `n` dummy events spaced `step`
 *  cycles apart so the sampler has something to sample across. */
void
scheduleDummies(EventQueue &eq, int n, Cycles step)
{
    for (int i = 1; i <= n; ++i)
        eq.scheduleAt(static_cast<Cycles>(i) * step, [] {});
}

} // namespace

TEST(Timeline, SamplesGaugesWithChangeDedup)
{
    EventQueue eq;
    TimelineSampler tl;
    std::int64_t level = 0;
    tl.addGauge("test.level", [&level] { return level; }, 3);
    tl.enable(100);

    // Level changes at 250 (to 7) and 650 (back to 0); dummy events
    // keep the queue alive to cycle 1000.
    eq.scheduleAt(250, [&level] { level = 7; });
    eq.scheduleAt(650, [&level] { level = 0; });
    scheduleDummies(eq, 10, 100);
    tl.ensureScheduled(eq);
    eq.run();

    ASSERT_EQ(tl.gaugeCount(), 1u);
    // Dedup: only value *changes* store — 0 at t=0, 7 at t=300 (first
    // aligned tick after the change), 0 at t=700.
    ASSERT_EQ(tl.sampleCount(0), 3u);
    const TimelineSample *s = tl.samplesFor(0);
    EXPECT_EQ(s[0].when, 0u);
    EXPECT_EQ(s[0].value, 0);
    EXPECT_EQ(s[1].when, 300u);
    EXPECT_EQ(s[1].value, 7);
    EXPECT_EQ(s[2].when, 700u);
    EXPECT_EQ(s[2].value, 0);
    EXPECT_EQ(tl.droppedSamples(), 0u);
    EXPECT_GE(tl.tickCount(), 10u);
}

TEST(Timeline, RateGaugeStoresPerPeriodDeltas)
{
    EventQueue eq;
    TimelineSampler tl;
    std::int64_t cumulative = 0;
    tl.addRateGauge("test.rate", [&cumulative] { return cumulative; });
    tl.enable(100);

    // +5 per 100-cycle period for the first 3 periods, then quiet.
    for (int i = 0; i < 3; ++i) {
        eq.scheduleAt(static_cast<Cycles>(i) * 100 + 50,
                      [&cumulative] { cumulative += 5; });
    }
    scheduleDummies(eq, 6, 100);
    tl.ensureScheduled(eq);
    eq.run();

    // First tick emits 0 (no prior reading), then 5,5,5, then 0.
    ASSERT_GE(tl.sampleCount(0), 3u);
    const TimelineSample *s = tl.samplesFor(0);
    EXPECT_EQ(s[0].value, 0);
    EXPECT_EQ(s[1].when, 100u);
    EXPECT_EQ(s[1].value, 5);
    // Dedup collapses the three consecutive 5s; next stored change is
    // the drop back to 0.
    EXPECT_EQ(s[2].value, 0);
    EXPECT_EQ(s[2].when, 400u);
}

TEST(Timeline, WatchdogFiresOnSustainedViolationOnly)
{
    EventQueue eq;
    TimelineSampler tl;
    std::int64_t depth = 0;
    tl.addGauge("test.depth", [&depth] { return depth; });
    tl.addRule("deep_queue", "test.depth", 10, 300);
    tl.enable(100);

    // A 200-cycle burst above threshold (under the 300-cycle minimum
    // duration) must NOT fire; a later 500-cycle plateau must.
    eq.scheduleAt(150, [&depth] { depth = 15; });
    eq.scheduleAt(350, [&depth] { depth = 0; });
    eq.scheduleAt(1050, [&depth] { depth = 12; });
    eq.scheduleAt(1550, [&depth] { depth = 0; });
    scheduleDummies(eq, 20, 100);
    tl.ensureScheduled(eq);
    eq.run();

    ASSERT_EQ(tl.anomalyCount(), 1u);
    const TimelineSampler::Anomaly &a = tl.anomalies()[0];
    EXPECT_EQ(tl.ruleName(a.rule), "deep_queue");
    EXPECT_EQ(a.begin, 1100u); // first tick at/above threshold
    EXPECT_EQ(a.peak, 12);
    EXPECT_GE(a.end, 1400u);
}

TEST(Timeline, InstantRuleFiresOnFirstOffendingSample)
{
    EventQueue eq;
    TimelineSampler tl;
    std::int64_t v = 0;
    tl.addGauge("test.burst", [&v] { return v; });
    tl.addRule("burst", "test.burst", 8, 0);
    tl.enable(100);

    eq.scheduleAt(250, [&v] { v = 9; });
    eq.scheduleAt(350, [&v] { v = 0; });
    scheduleDummies(eq, 5, 100);
    tl.ensureScheduled(eq);
    eq.run();

    ASSERT_EQ(tl.anomalyCount(), 1u);
    EXPECT_EQ(tl.anomalies()[0].begin, 300u);
}

TEST(Timeline, AnomalyBufferSaturationIsCountedNotSilent)
{
    // An instant rule over a gauge that oscillates every other tick
    // opens one anomaly window per excursion — far more than the
    // fixed anomaly buffer holds. The overflow must be counted in
    // anomaliesDropped() and surfaced in the JSON export, and the
    // anomaly hook must keep firing for dropped windows too (the
    // flight recorder wants every trigger, stored or not).
    EventQueue eq;
    TimelineSampler tl;
    std::int64_t v = 0;
    tl.addGauge("test.flap", [&v] { return v; });
    tl.addRule("flap", "test.flap", 5, 0);
    std::uint64_t opens = 0, closes = 0;
    tl.setAnomalyHook(
        [&opens, &closes](Cycles, std::uint32_t, bool open) {
            if (open)
                ++opens;
            else
                ++closes;
        });
    tl.enable(100);

    constexpr std::uint64_t excursions =
        TimelineSampler::anomalyCapacity + 40;
    for (std::uint64_t i = 0; i < excursions; ++i) {
        // Above threshold for one tick at 100(2i+1)+50, back below
        // before the next: each excursion is its own window.
        eq.scheduleAt(200 * i + 150, [&v] { v = 9; });
        eq.scheduleAt(200 * i + 250, [&v] { v = 0; });
    }
    scheduleDummies(eq, 2 * excursions + 2, 100);
    tl.ensureScheduled(eq);
    eq.run();

    EXPECT_EQ(tl.anomalyCount(), TimelineSampler::anomalyCapacity);
    EXPECT_EQ(tl.anomaliesDropped(),
              excursions - TimelineSampler::anomalyCapacity);
    EXPECT_EQ(opens, excursions);
    EXPECT_EQ(closes, excursions);

    const std::string json = tl.renderJson(Frequency(2.4));
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"anomalies_dropped\":40"),
              std::string::npos);

    // A dropped window is one window, however many ticks it spans:
    // a sustained excursion past the full buffer counts once.
    tl.resetSeries();
    EXPECT_EQ(tl.anomaliesDropped(), 0u);
}

TEST(Timeline, ResetSeriesKeepsRegistrationsAndConfiguration)
{
    EventQueue eq;
    TimelineSampler tl;
    std::int64_t v = 1;
    tl.addGauge("test.v", [&v] { return v; });
    tl.addRule("high_v", "test.v", 100, 0);
    tl.enable(50);

    scheduleDummies(eq, 4, 50);
    tl.ensureScheduled(eq);
    eq.run();
    EXPECT_GT(tl.sampleCount(0), 0u);

    tl.resetSeries();
    EXPECT_EQ(tl.sampleCount(0), 0u);
    EXPECT_EQ(tl.anomalyCount(), 0u);
    EXPECT_EQ(tl.tickCount(), 0u);
    // Gauges, rules, and the enable/period survive.
    EXPECT_EQ(tl.gaugeCount(), 1u);
    EXPECT_EQ(tl.ruleCount(), 1u);
    EXPECT_TRUE(tl.enabled());
    EXPECT_EQ(tl.period(), 50u);

    // And sampling resumes identically on a rewound queue.
    eq.reset();
    scheduleDummies(eq, 4, 50);
    tl.ensureScheduled(eq);
    eq.run();
    ASSERT_EQ(tl.sampleCount(0), 1u);
    EXPECT_EQ(tl.samplesFor(0)[0].when, 0u);
    EXPECT_EQ(tl.samplesFor(0)[0].value, 1);
}

TEST(Timeline, DisabledSamplerNeverSchedules)
{
    EventQueue eq;
    TimelineSampler tl;
    std::int64_t v = 0;
    tl.addGauge("test.v", [&v] { return v; });

    scheduleDummies(eq, 3, 100);
    tl.ensureScheduled(eq); // disabled: must be a no-op
    eq.run();
    EXPECT_EQ(tl.tickCount(), 0u);
    EXPECT_EQ(tl.sampleCount(0), 0u);
}

TEST(Timeline, RenderJsonIsWellFormedAndCarriesSchema)
{
    EventQueue eq;
    TimelineSampler tl;
    std::int64_t v = 0;
    tl.addGauge("test.\"quoted\"", [&v] { return v; }, 2);
    tl.addRateGauge("test.rate", [&v] { return v; });
    tl.addRule("r", "test.rate", 1, 0);
    tl.enable(100);

    eq.scheduleAt(150, [&v] { v = 3; });
    scheduleDummies(eq, 4, 100);
    tl.ensureScheduled(eq);
    eq.run();

    const Frequency f(2.4);
    const std::string json = tl.renderJson(f);
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"schema\":\"virtsim-timeline-1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"period_cycles\":100"), std::string::npos);
    EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\":\"rate\""), std::string::npos);
    EXPECT_NE(json.find("\"anomaly_count\":"), std::string::npos);

    const std::string csv = tl.renderCsv(f);
    EXPECT_EQ(csv.rfind("series,track,kind,cycles,us,value\n", 0), 0u);
    EXPECT_NE(csv.find("test.rate"), std::string::npos);
}

TEST(Timeline, CounterEventsMergeIntoChromeTrace)
{
    EventQueue eq;
    TraceSink sink;
    TimelineSampler tl;
    std::int64_t v = 0;
    tl.addGauge("test.counter", [&v] { return v; });
    tl.enable(100);

    eq.scheduleAt(150, [&v] { v = 4; });
    scheduleDummies(eq, 3, 100);
    tl.ensureScheduled(eq);
    eq.run();

    std::ostringstream os;
    writeChromeTrace(os, sink, Frequency(2.4), "test", &tl);
    const std::string json = os.str();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"test.counter\""),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Zero-allocation guarantees.
// ---------------------------------------------------------------------

TEST(TimelineFastPath, DisabledPathAllocatesNothing)
{
    EventQueue eq;
    TimelineSampler tl;
    std::int64_t v = 0;
    tl.addGauge("test.v", [&v] { return v; });

    const std::uint64_t before =
        g_news.load(std::memory_order_relaxed);
    for (int i = 0; i < 100000; ++i)
        tl.ensureScheduled(eq);
    const std::uint64_t after =
        g_news.load(std::memory_order_relaxed);
    EXPECT_EQ(after, before);
}

TEST(TimelineFastPath, EnabledSteadyStateAllocatesNothing)
{
    EventQueue eq;
    TimelineSampler tl;
    std::int64_t level = 0, cum = 0;
    tl.addGauge("test.level", [&level] { return level; });
    tl.addRateGauge("test.rate", [&cum] { return cum; });
    tl.addRule("r", "test.level", 1000, 0);
    tl.enable(10);

    auto schedule_workload = [&] {
        scheduleDummies(eq, 50, 10);
        for (int i = 0; i < 50; ++i) {
            eq.scheduleAt(static_cast<Cycles>(i) * 10 + 5,
                          [&level, &cum, i] {
                              level = i % 7;
                              cum += i;
                          });
        }
    };

    // Warm-up: the first run grows the event arena to its high-water
    // mark and stores the first samples; an identically shaped second
    // run is pure steady state and must not allocate.
    schedule_workload();
    tl.ensureScheduled(eq);
    eq.run();

    tl.resetSeries();
    eq.reset();
    level = 0;
    cum = 0;
    schedule_workload();
    const std::uint64_t before =
        g_news.load(std::memory_order_relaxed);
    tl.ensureScheduled(eq);
    eq.run();
    const std::uint64_t after =
        g_news.load(std::memory_order_relaxed);
    EXPECT_EQ(after, before);
    EXPECT_GT(tl.sampleCount(0), 1u);
}

// ---------------------------------------------------------------------
// Full-stack determinism through the Testbed.
// ---------------------------------------------------------------------

namespace {

/** One microbench workload + timeline JSON render on a fresh,
 *  directly constructed testbed. */
std::string
timelineJsonFor(SutKind kind)
{
    TestbedConfig tc;
    tc.kind = kind;
    Testbed tb(tc);
    tb.enableTimeline(1e6); // 1 MHz simulated sampling
    MicrobenchSuite suite(tb);
    suite.run(MicroOp::Hypercall, 10);
    suite.run(MicroOp::VirtualIpi, 10);
    return tb.timeline().renderJson(tb.freq());
}

} // namespace

TEST(Timeline, ExportsAreIdenticalAcrossSweepWidths)
{
    const std::vector<SutKind> kinds = {
        SutKind::KvmArm, SutKind::XenArm, SutKind::KvmX86,
        SutKind::KvmArmVhe};
    auto run_cols = [&kinds](int jobs) {
        return parallelSweepIndexed(
            kinds.size(),
            [&kinds](std::size_t i) {
                return timelineJsonFor(kinds[i]);
            },
            jobs);
    };
    const auto serial = run_cols(1);
    const auto wide = run_cols(8);
    ASSERT_EQ(serial.size(), wide.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_FALSE(serial[i].empty());
        EXPECT_NE(serial[i].find("\"samples\":[["),
                  std::string::npos)
            << "column " << i << " sampled nothing";
        EXPECT_EQ(serial[i], wide[i]) << "column " << i;
    }
}

TEST(Timeline, TestbedResetRebuildsSamplerState)
{
    TestbedConfig tc;
    tc.kind = SutKind::KvmArm;

    Testbed tb(tc);
    tb.enableTimeline(1e6);
    MicrobenchSuite first(tb);
    first.run(MicroOp::Hypercall, 10);
    const std::string fresh = tb.timeline().renderJson(tb.freq());
    const std::size_t gauges = tb.timeline().gaugeCount();
    const std::size_t rules = tb.timeline().ruleCount();
    EXPECT_GT(gauges, 0u);
    EXPECT_GT(rules, 0u);

    // reset() tears the hypervisor down and clears the sampler; the
    // rebuilt world must re-register the same gauges and rules and
    // reproduce the fresh run byte-for-byte.
    tb.reset();
    EXPECT_EQ(tb.timeline().gaugeCount(), gauges);
    EXPECT_EQ(tb.timeline().ruleCount(), rules);
    EXPECT_TRUE(tb.timeline().enabled());
    MicrobenchSuite second(tb);
    second.run(MicroOp::Hypercall, 10);
    EXPECT_EQ(tb.timeline().renderJson(tb.freq()), fresh);
}

TEST(Timeline, NetperfRrRunIsAnomalyFree)
{
    // The watchdog must stay quiet on a paper-config workload: the
    // Table V bench asserts this too, but catching a rule
    // misconfiguration here keeps the bench gate meaningful.
    TestbedConfig tc;
    tc.kind = SutKind::KvmArm;
    Testbed tb(tc);
    tb.enableTimeline(100000.0);
    runNetperfRr(tb);
    EXPECT_EQ(tb.timeline().anomalyCount(), 0u);
    EXPECT_GT(tb.timeline().tickCount(), 0u);
    // The netperf run must actually exercise the I/O gauges.
    const int rx = tb.timeline().findGauge("nic.rx_queue");
    ASSERT_GE(rx, 0);
}

// ---------------------------------------------------------------------
// Env-knob validation (satellite: fatal on garbage, never silent).
// ---------------------------------------------------------------------

namespace {

/** Scoped env override; restores the prior value on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name(name)
    {
        if (const char *prev = std::getenv(name))
            saved = prev;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (saved.empty())
            ::unsetenv(name);
        else
            ::setenv(name, saved.c_str(), 1);
    }

  private:
    const char *name;
    std::string saved;
};

} // namespace

TEST(TimelineEnv, InvalidTimelineHzIsFatal)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    for (const char *bad : {"0", "-5", "fast", "1e6", "100x",
                            "99999999999999999999999"}) {
        ScopedEnv env("VIRTSIM_TIMELINE_HZ", bad);
        EXPECT_EXIT(
            {
                TestbedConfig tc;
                tc.kind = SutKind::KvmArm;
                Testbed tb(tc);
            },
            testing::ExitedWithCode(1), "VIRTSIM_TIMELINE_HZ")
            << "value \"" << bad << "\"";
    }
}

TEST(TimelineEnv, InvalidTraceCapacityIsFatal)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    for (const char *bad : {"0", "-1", "lots", "4k",
                            "99999999999999999999999"}) {
        ScopedEnv env("VIRTSIM_TRACE_CAPACITY", bad);
        EXPECT_EXIT(
            {
                TestbedConfig tc;
                tc.kind = SutKind::KvmArm;
                Testbed tb(tc);
            },
            testing::ExitedWithCode(1), "VIRTSIM_TRACE_CAPACITY")
            << "value \"" << bad << "\"";
    }
}

TEST(TimelineEnv, ValidTimelineHzArmsTheSampler)
{
    ScopedEnv hz("VIRTSIM_TIMELINE_HZ", "1000000");
    ScopedEnv path("VIRTSIM_TIMELINE",
                   "/tmp/virtsim_test_timeline_env.json");
    TestbedConfig tc;
    tc.kind = SutKind::KvmArm;
    Testbed tb(tc);
    EXPECT_TRUE(tb.timeline().enabled());
    // 2.4 GHz / 1 MHz = 2400 cycles per sample.
    EXPECT_EQ(tb.timeline().period(), 2400u);
    EXPECT_GT(tb.timeline().ruleCount(), 0u);
}
