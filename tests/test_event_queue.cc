/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, determinism,
 * and clock semantics — the foundation the measurement methodology
 * rests on.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace virtsim;

TEST(EventQueue, StartsAtZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(30, [&] { order.push_back(3); });
    eq.scheduleAt(10, [&] { order.push_back(1); });
    eq.scheduleAt(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTimeIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.scheduleAt(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue eq;
    Cycles seen = 0;
    eq.scheduleAt(100, [&] {
        eq.scheduleAfter(50, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 100)
            eq.scheduleAfter(1, chain);
    };
    eq.scheduleAt(0, chain);
    eq.run();
    EXPECT_EQ(count, 100);
    EXPECT_EQ(eq.now(), 99u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(10, [&] { ++fired; });
    eq.scheduleAt(20, [&] { ++fired; });
    eq.scheduleAt(30, [&] { ++fired; });
    eq.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle)
{
    EventQueue eq;
    eq.runUntil(500);
    EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueue, StepFiresExactlyOne)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(1, [&] { ++fired; });
    eq.scheduleAt(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ClearDropsPending)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(10, [&] { ++fired; });
    eq.clear();
    eq.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueueDeath, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.scheduleAt(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.scheduleAt(50, [] {}), "scheduling into the past");
}

/** Property: any schedule order fires in (time, insertion) order. */
class EventQueueOrderTest : public ::testing::TestWithParam<int>
{
};

TEST_P(EventQueueOrderTest, PermutedInsertionFiresSorted)
{
    const int seed = GetParam();
    EventQueue eq;
    // Pseudo-random times from a small LCG; deterministic per seed.
    unsigned state = static_cast<unsigned>(seed) * 2654435761u + 1u;
    std::vector<Cycles> fired;
    for (int i = 0; i < 200; ++i) {
        state = state * 1664525u + 1013904223u;
        const Cycles when = state % 997;
        eq.scheduleAt(when, [&fired, &eq] { fired.push_back(eq.now()); });
    }
    eq.run();
    ASSERT_EQ(fired.size(), 200u);
    for (std::size_t i = 1; i < fired.size(); ++i)
        EXPECT_LE(fired[i - 1], fired[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueOrderTest,
                         ::testing::Range(0, 10));
