/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, determinism,
 * and clock semantics — the foundation the measurement methodology
 * rests on.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace virtsim;

TEST(EventQueue, StartsAtZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(30, [&] { order.push_back(3); });
    eq.scheduleAt(10, [&] { order.push_back(1); });
    eq.scheduleAt(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTimeIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.scheduleAt(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue eq;
    Cycles seen = 0;
    eq.scheduleAt(100, [&] {
        eq.scheduleAfter(50, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 100)
            eq.scheduleAfter(1, chain);
    };
    eq.scheduleAt(0, chain);
    eq.run();
    EXPECT_EQ(count, 100);
    EXPECT_EQ(eq.now(), 99u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(10, [&] { ++fired; });
    eq.scheduleAt(20, [&] { ++fired; });
    eq.scheduleAt(30, [&] { ++fired; });
    eq.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle)
{
    EventQueue eq;
    eq.runUntil(500);
    EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueue, StepFiresExactlyOne)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(1, [&] { ++fired; });
    eq.scheduleAt(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ClearDropsPending)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(10, [&] { ++fired; });
    eq.clear();
    eq.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, RunUntilFiresEventExactlyAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(100, [&] { ++fired; });
    eq.scheduleAt(101, [&] { ++fired; });
    eq.runUntil(100);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 100u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.runUntil(101);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ClearThenRescheduleReusesArenaSlots)
{
    EventQueue eq;
    int dropped = 0;
    int fired = 0;
    // Fill a batch of arena slots, then drop them all.
    for (int i = 0; i < 64; ++i)
        eq.scheduleAt(static_cast<Cycles>(10 + i),
                      [&dropped] { ++dropped; });
    EXPECT_EQ(eq.pending(), 64u);
    eq.clear();
    EXPECT_EQ(eq.pending(), 0u);
    // Reschedule through the recycled slots; old events must not
    // resurface and new ones must all fire in order.
    std::vector<int> order;
    for (int i = 0; i < 64; ++i)
        eq.scheduleAt(static_cast<Cycles>(20 + i), [&order, &fired, i] {
            order.push_back(i);
            ++fired;
        });
    eq.run();
    EXPECT_EQ(dropped, 0);
    EXPECT_EQ(fired, 64);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
    // And again, to cycle the free list twice.
    eq.clear();
    eq.scheduleAfter(5, [&fired] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 65);
}

TEST(EventQueue, SameCycleFifoUnderHeavyChurn)
{
    // Interleave same-cycle scheduling with firing: each event at
    // cycle T appends two children at T+1; FIFO order within every
    // cycle must match scheduling order even as arena slots recycle.
    EventQueue eq;
    std::vector<std::pair<Cycles, int>> fired;
    int next_tag = 0;
    std::function<void(int, int)> spawn = [&](int tag, int depth) {
        fired.emplace_back(eq.now(), tag);
        if (depth >= 6)
            return;
        const int a = ++next_tag;
        const int b = ++next_tag;
        eq.scheduleAfter(1, [&spawn, a, depth] { spawn(a, depth + 1); });
        eq.scheduleAfter(1, [&spawn, b, depth] { spawn(b, depth + 1); });
    };
    for (int r = 0; r < 4; ++r) {
        const int tag = ++next_tag;
        eq.scheduleAt(1, [&spawn, tag] { spawn(tag, 0); });
    }
    eq.run();
    ASSERT_GT(fired.size(), 100u);
    // Time never goes backwards, and same-cycle tags fire in
    // scheduling (i.e. creation) order.
    for (std::size_t i = 1; i < fired.size(); ++i) {
        EXPECT_LE(fired[i - 1].first, fired[i].first);
        if (fired[i - 1].first == fired[i].first) {
            EXPECT_LT(fired[i - 1].second, fired[i].second);
        }
    }
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue eq;
    int fired = 0;
    const EventId a = eq.scheduleAt(10, [&] { fired += 1; });
    const EventId b = eq.scheduleAt(20, [&] { fired += 10; });
    eq.scheduleAt(30, [&] { fired += 100; });
    EXPECT_EQ(eq.pending(), 3u);
    EXPECT_TRUE(eq.cancel(b));
    EXPECT_EQ(eq.pending(), 2u);
    EXPECT_FALSE(eq.cancel(b)) << "double cancel must be a no-op";
    eq.run();
    EXPECT_EQ(fired, 101);
    EXPECT_FALSE(eq.cancel(a)) << "cancelling a fired event is stale";
    EXPECT_FALSE(eq.cancel(invalidEventId));
}

TEST(EventQueue, CancelledSlotIsSafelyReused)
{
    EventQueue eq;
    int fired = 0;
    const EventId a = eq.scheduleAt(10, [&] { fired += 1; });
    EXPECT_TRUE(eq.cancel(a));
    // The recycled slot hosts a new event; the stale handle must not
    // be able to cancel it.
    eq.scheduleAt(10, [&] { fired += 10; });
    EXPECT_FALSE(eq.cancel(a));
    eq.run();
    EXPECT_EQ(fired, 10);
}

TEST(EventQueue, CancelFromWithinCallback)
{
    EventQueue eq;
    int fired = 0;
    EventId victim = invalidEventId;
    eq.scheduleAt(5, [&] {
        ++fired;
        EXPECT_TRUE(eq.cancel(victim));
    });
    victim = eq.scheduleAt(6, [&] { fired += 100; });
    eq.scheduleAt(7, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 7u);
}

TEST(EventQueue, RunUntilSkipsCancelledFrontier)
{
    // A cancelled event below the limit must not cause runUntil to
    // fire events beyond the limit.
    EventQueue eq;
    int fired = 0;
    const EventId a = eq.scheduleAt(5, [&] { fired += 1; });
    eq.scheduleAt(50, [&] { fired += 100; });
    eq.cancel(a);
    eq.runUntil(10);
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 100);
}

TEST(EventQueueDeath, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.scheduleAt(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.scheduleAt(50, [] {}), "scheduling into the past");
}

/** Property: any schedule order fires in (time, insertion) order. */
class EventQueueOrderTest : public ::testing::TestWithParam<int>
{
};

TEST_P(EventQueueOrderTest, PermutedInsertionFiresSorted)
{
    const int seed = GetParam();
    EventQueue eq;
    // Pseudo-random times from a small LCG; deterministic per seed.
    unsigned state = static_cast<unsigned>(seed) * 2654435761u + 1u;
    std::vector<Cycles> fired;
    for (int i = 0; i < 200; ++i) {
        state = state * 1664525u + 1013904223u;
        const Cycles when = state % 997;
        eq.scheduleAt(when, [&fired, &eq] { fired.push_back(eq.now()); });
    }
    eq.run();
    ASSERT_EQ(fired.size(), 200u);
    for (std::size_t i = 1; i < fired.size(); ++i)
        EXPECT_LE(fired[i - 1], fired[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueOrderTest,
                         ::testing::Range(0, 10));

TEST(EventQueueCompaction, CancelChurnReclaimsDeadEntries)
{
    EventQueue eq;
    std::vector<EventId> ids;
    int fired = 0;
    // 200 events, then cancel 150: dead entries outnumber live ones,
    // so cancel() must compact in place instead of letting the heap
    // carry the cancel history to the end of the run.
    for (int i = 0; i < 200; ++i) {
        ids.push_back(eq.scheduleAt(
            static_cast<Cycles>(10 + i), [&fired] { ++fired; }));
    }
    for (int i = 0; i < 150; ++i)
        EXPECT_TRUE(eq.cancel(ids[static_cast<std::size_t>(i)]));
    EXPECT_GE(eq.compactions(), 1u);
    // The invariant compaction maintains: dead entries never
    // outnumber live ones, so sift depth tracks the live population
    // (without compaction this heap would be 150 dead / 50 live).
    EXPECT_LE(eq.deadEntries() * 2, eq.heapSize());
    EXPECT_EQ(eq.heapSize(), eq.pending() + eq.deadEntries());
    EXPECT_EQ(eq.pending(), 50u);
    eq.run();
    EXPECT_EQ(fired, 50);
}

TEST(EventQueueCompaction, FiringOrderSurvivesCompaction)
{
    EventQueue eq;
    // Interleave schedule/cancel churn (timer-retarget pattern), then
    // verify the survivors still fire in (time, insertion) order.
    unsigned state = 12345u;
    std::vector<EventId> pending;
    std::vector<Cycles> fired;
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 20; ++i) {
            state = state * 1664525u + 1013904223u;
            pending.push_back(eq.scheduleAt(
                state % 5000,
                [&fired, &eq] { fired.push_back(eq.now()); }));
        }
        // Cancel three quarters of what this round scheduled.
        for (int i = 0; i < 15; ++i) {
            state = state * 1664525u + 1013904223u;
            eq.cancel(pending[pending.size() - 1 -
                              state % pending.size() % 20]);
        }
    }
    const std::size_t live = eq.pending();
    EXPECT_GE(eq.compactions(), 1u);
    eq.run();
    EXPECT_EQ(fired.size(), live);
    for (std::size_t i = 1; i < fired.size(); ++i)
        EXPECT_LE(fired[i - 1], fired[i]);
    EXPECT_EQ(eq.deadEntries(), 0u);
}

TEST(EventQueueCompaction, SmallHeapsSkipCompaction)
{
    EventQueue eq;
    // Below the compaction floor the dead entries just ride along
    // (compacting a tiny heap costs more than it saves) and are
    // reclaimed as they surface during the run.
    std::vector<EventId> ids;
    for (int i = 0; i < 20; ++i)
        ids.push_back(eq.scheduleAt(static_cast<Cycles>(i + 1), [] {}));
    for (int i = 0; i < 15; ++i)
        eq.cancel(ids[static_cast<std::size_t>(i)]);
    EXPECT_EQ(eq.compactions(), 0u);
    EXPECT_EQ(eq.deadEntries(), 15u);
    eq.run();
    EXPECT_EQ(eq.deadEntries(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
}
