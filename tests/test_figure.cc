/**
 * @file
 * Tests for the text bar-chart renderer, in particular the rule that
 * a zero/negligible value renders an *empty* bar rather than being
 * padded to a minimum width.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/figure.hh"

using namespace virtsim;

namespace {

BarFigure
makeFigure(double max_value = 4.0, int width = 40)
{
    return BarFigure({"KVM", "Xen"}, max_value, width);
}

} // namespace

TEST(BarFigure, ZeroValueRendersEmptyBar)
{
    const auto fig = makeFigure();
    EXPECT_EQ(fig.renderBar(0.0), "");
}

TEST(BarFigure, NegligibleValueRendersEmptyBar)
{
    // Anything that rounds to less than half a cell should vanish
    // rather than be inflated to one '#'.
    const auto fig = makeFigure(4.0, 40);
    EXPECT_EQ(fig.renderBar(0.04), "");
}

TEST(BarFigure, ProportionalWidth)
{
    const auto fig = makeFigure(4.0, 40);
    EXPECT_EQ(fig.renderBar(2.0), std::string(20, '#'));
    EXPECT_EQ(fig.renderBar(4.0), std::string(40, '#'));
    EXPECT_EQ(fig.renderBar(1.0).size(), 10u);
}

TEST(BarFigure, ClippedValueMarksOverflow)
{
    const auto fig = makeFigure(4.0, 40);
    const std::string bar = fig.renderBar(9.5);
    ASSERT_EQ(bar.size(), 40u);
    EXPECT_EQ(bar.back(), '>');
    EXPECT_EQ(bar.substr(0, 39), std::string(39, '#'));
}

TEST(BarFigure, RenderIncludesEmptyBarLine)
{
    auto fig = makeFigure(4.0, 8);
    fig.addGroup("Kern", {0.0, 2.0});
    const std::string out = fig.render();
    // The zero-valued series must show no '#' before its number.
    EXPECT_NE(out.find("KVM | 0.00"), std::string::npos) << out;
    EXPECT_NE(out.find("Xen |#### 2.00"), std::string::npos) << out;
}
