/** @file Build smoke test: construct every testbed configuration. */

#include <gtest/gtest.h>

#include "core/testbed.hh"

using namespace virtsim;

TEST(Smoke, ConstructAllConfigurations)
{
    for (SutKind k : {SutKind::Native, SutKind::NativeX86,
                      SutKind::KvmArm, SutKind::XenArm,
                      SutKind::KvmX86, SutKind::XenX86,
                      SutKind::KvmArmVhe}) {
        TestbedConfig tc;
        tc.kind = k;
        Testbed tb(tc);
        EXPECT_EQ(tb.width(), 4) << to_string(k);
    }
}
