/**
 * @file
 * Tests for the sharded event kernel: conservative-lookahead rounds
 * must produce byte-identical modelled results at every lane count,
 * channels must enforce their declared latencies, the VIRTSIM_SHARDS
 * knob must validate, sharded runs inside sweep workers must
 * serialize, and the shard health telemetry must publish.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/appbench.hh"
#include "core/fleet.hh"
#include "core/netperf.hh"
#include "core/testbed.hh"
#include "sim/channel.hh"
#include "sim/probe.hh"
#include "sim/shard.hh"
#include "sim/sweep.hh"
#include "sim/timeline.hh"

using namespace virtsim;

namespace {

/** Scoped environment override; restores the prior value on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name(name)
    {
        const char *prev = std::getenv(name);
        if (prev)
            saved = prev;
        had = prev != nullptr;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (had)
            ::setenv(name, saved.c_str(), 1);
        else
            ::unsetenv(name);
    }

  private:
    const char *name;
    std::string saved;
    bool had = false;
};

FleetConfig
smallFleet()
{
    FleetConfig cfg;
    cfg.nCpus = 4;
    cfg.connsPerCpu = 8;
    cfg.transactionsPerConn = 40;
    return cfg;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

} // namespace

TEST(FleetDeterminism, ByteIdenticalAcrossLaneCounts)
{
    const FleetConfig cfg = smallFleet();
    const FleetResult serial = runNetperfRrFleet(cfg, 1);
    EXPECT_EQ(serial.transactions,
              static_cast<std::uint64_t>(cfg.nCpus) *
                  cfg.connsPerCpu * cfg.transactionsPerConn);
    EXPECT_GT(serial.finalTime, 0u);
    EXPECT_GT(serial.totalRttCycles, 0u);
    for (int lanes : {2, 3, 4, 8}) {
        const FleetResult r = runNetperfRrFleet(cfg, lanes);
        EXPECT_TRUE(serial.sameModelledResult(r))
            << "lanes=" << lanes << " final=" << r.finalTime
            << " tx=" << r.transactions
            << " checksum=" << r.checksum;
    }
}

TEST(FleetDeterminism, ParallelRoundsActuallyHappen)
{
    const FleetConfig cfg = smallFleet();
    EXPECT_EQ(runNetperfRrFleet(cfg, 1).parallelRounds, 0u);
    // Per-CPU lanes are genuinely decoupled by the wire lookahead, so
    // a multi-lane run must actually use the parallel crew path (the
    // determinism test above is meaningless if it silently ran
    // serial rounds).
    EXPECT_GT(runNetperfRrFleet(cfg, 4).parallelRounds, 0u);
}

TEST(ShardChannelDeath, SendViolatingLookaheadDies)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_DEATH(
        {
            ShardedEventKernel kern(2);
            kern.assignShard(deviceShard, 0);
            kern.assignShard(cpuShard(0), 1);
            ShardChannel &ch = kern.channel("t.req", deviceShard,
                                            cpuShard(0), 100);
            // Only lane 0 is active, so the round executes on this
            // thread; the send promises an arrival earlier than the
            // declared lookahead permits.
            kern.lane(0).scheduleAt(
                50, [&ch] { ch.send(149, [] {}); });
            kern.run();
        },
        "violates declared lookahead");
}

TEST(ShardChannelDeath, CrossLaneZeroLookaheadDies)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_DEATH(
        {
            ShardedEventKernel kern(2);
            kern.assignShard(deviceShard, 0);
            kern.assignShard(cpuShard(0), 1);
            kern.channel("t.zero", deviceShard, cpuShard(0), 0);
        },
        "needs latency");
}

TEST(ShardChannel, RedeclarationReusesAndTightens)
{
    ShardedEventKernel kern(2);
    kern.assignShard(deviceShard, 0);
    kern.assignShard(cpuShard(0), 1);
    ShardChannel &a = kern.channel("t.req", deviceShard,
                                   cpuShard(0), 100);
    EXPECT_EQ(a.lookahead(), 100u);
    // A testbed reset rebuilds its world on the same kernel; the
    // redeclaration must reuse the channel (not grow the table) and
    // keep the tighter latency.
    ShardChannel &b = kern.channel("t.req", deviceShard,
                                   cpuShard(0), 80);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(a.lookahead(), 80u);
    ShardChannel &c = kern.channel("t.req", deviceShard,
                                   cpuShard(0), 200);
    EXPECT_EQ(&a, &c);
    EXPECT_EQ(a.lookahead(), 80u);
}

TEST(ShardChannel, RedeclarationFollowsNewShardPlan)
{
    ShardedEventKernel kern(2);
    kern.assignShard(deviceShard, 0);
    kern.assignShard(cpuShard(0), 1);
    ShardChannel &a = kern.channel("t.req", deviceShard,
                                   cpuShard(0), 100);
    EXPECT_TRUE(a.crossLane());
    EXPECT_EQ(a.dstLane(), 1);
    // A harness re-planning its shards before rebuilding the world
    // must see sends routed by the current plan; a redeclaration that
    // kept the stale lane would silently misroute every message.
    kern.assignShard(cpuShard(0), 0);
    ShardChannel &b = kern.channel("t.req", deviceShard,
                                   cpuShard(0), 100);
    EXPECT_EQ(&a, &b);
    EXPECT_FALSE(a.crossLane());
    EXPECT_EQ(a.dstLane(), 0);
}

TEST(ShardHorizon, EmptyLaneStillBoundsDownstreamLanes)
{
    // Regression: a lane with an empty queue can still be woken by an
    // inbound message and then send (request/response relays, an idle
    // CPU woken by an injected IRQ). The horizon must propagate its
    // earliest possible receive time to the lanes downstream of it;
    // treating it as unconstraining lets a far-ahead lane drain its
    // whole queue and then receive the relayed message in its own
    // past.
    ShardedEventKernel kern(3);
    kern.assignShard(0, 0);
    kern.assignShard(1, 1);
    kern.assignShard(2, 2);
    ShardChannel &ab = kern.channel("t.ab", 0, 1, 100);
    ShardChannel &bc = kern.channel("t.bc", 1, 2, 100);

    // Lane 2: one far-future local event. Lane 1: empty until the
    // relay arrives. Lane 0: the origin of the chain.
    std::vector<Cycles> laneCOrder;
    int relayed = 0;
    kern.lane(2).scheduleAt(10000, [&laneCOrder] {
        laneCOrder.push_back(10000);
    });
    kern.lane(0).scheduleAt(10, [&] {
        ab.send(110, [&] {
            ++relayed;
            bc.send(210, [&laneCOrder] {
                laneCOrder.push_back(210);
            });
        });
    });
    kern.run();
    EXPECT_EQ(relayed, 1);
    ASSERT_EQ(laneCOrder.size(), 2u);
    // The relayed message (t=210) must execute before the far-future
    // local event, exactly as on the serial kernel.
    EXPECT_EQ(laneCOrder[0], 210u);
    EXPECT_EQ(laneCOrder[1], 10000u);
}

TEST(ShardSparseLbts, MatchesDenseOnRandomChannelGraphs)
{
    // Differential check of the sparse coordinator: on randomized
    // channel graphs and message cascades, the worklist LBTS with
    // idle-lane elision must reproduce the dense reference exactly —
    // per-lane firing logs, final clocks, and the full round/stall
    // accounting. The sparse run additionally arms the per-round
    // horizon cross-check, so every intermediate round's bounds and
    // targets are asserted equal to the dense fixed point, not just
    // the end state.
    for (const std::uint64_t seed :
         {1ull, 7ull, 42ull, 1337ull, 0xdeadbeefull}) {
        auto runOnce = [seed](bool dense) {
            std::mt19937_64 rng(seed);
            const int n = 3 + static_cast<int>(rng() % 6); // 3..8
            ShardedEventKernel kern(n);
            kern.setDenseCoordinator(dense);
            if (!dense)
                kern.enableHorizonCrossCheck();
            for (int i = 0; i < n; ++i)
                kern.assignShard(i, i);
            // Random sparse digraph: ~1/3 of the ordered pairs get a
            // channel, lookaheads in [50, 550).
            std::vector<std::vector<ShardChannel *>> out(
                static_cast<std::size_t>(n));
            for (int a = 0; a < n; ++a) {
                for (int b = 0; b < n; ++b) {
                    if (a == b || rng() % 100 >= 35)
                        continue;
                    const Cycles look = 50 + rng() % 500;
                    out[a].push_back(&kern.channel(
                        "t." + std::to_string(a) + "." +
                            std::to_string(b),
                        a, b, look));
                }
            }
            // Workload: every firing records (lane, time); cascades
            // are pre-drawn at construction so both coordinator paths
            // build the byte-identical event population.
            std::vector<std::vector<Cycles>> log(
                static_cast<std::size_t>(n));
            std::function<std::function<void()>(int, Cycles, int)>
                makeFire = [&](int lane, Cycles t,
                               int depth) -> std::function<void()> {
                ShardChannel *ch = nullptr;
                Cycles arrival = 0;
                std::function<void()> next;
                auto &outs = out[static_cast<std::size_t>(lane)];
                if (depth > 0 && !outs.empty() && rng() % 100 < 70) {
                    ch = outs[rng() % outs.size()];
                    arrival = t + ch->lookahead() + rng() % 400;
                    next = makeFire(ch->dstLane(), arrival, depth - 1);
                }
                return [&log, lane, t, ch, arrival,
                        next = std::move(next)] {
                    log[static_cast<std::size_t>(lane)].push_back(t);
                    if (ch)
                        ch->send(arrival, next);
                };
            };
            for (int i = 0; i < n; ++i) {
                if (i != 0 && rng() % 100 >= 80)
                    continue; // leave some lanes idle (elision path)
                const int roots = 2 + static_cast<int>(rng() % 4);
                for (int r = 0; r < roots; ++r) {
                    const Cycles t = 10 + rng() % 5000;
                    kern.lane(i).scheduleAt(t, makeFire(i, t, 3));
                }
            }
            kern.run();
            std::vector<Cycles> laneNow;
            for (int i = 0; i < n; ++i)
                laneNow.push_back(kern.lane(i).now());
            return std::tuple(std::move(log), std::move(laneNow),
                              kern.stats());
        };
        const auto [denseLog, denseNow, denseStats] = runOnce(true);
        const auto [sparseLog, sparseNow, sparseStats] =
            runOnce(false);
        EXPECT_EQ(denseLog, sparseLog) << "seed=" << seed;
        EXPECT_EQ(denseNow, sparseNow) << "seed=" << seed;
        EXPECT_EQ(denseStats.rounds, sparseStats.rounds)
            << "seed=" << seed;
        EXPECT_EQ(denseStats.crossMsgs, sparseStats.crossMsgs)
            << "seed=" << seed;
        ASSERT_EQ(denseStats.lanes.size(), sparseStats.lanes.size());
        for (std::size_t i = 0; i < denseStats.lanes.size(); ++i) {
            const auto &d = denseStats.lanes[i];
            const auto &s = sparseStats.lanes[i];
            EXPECT_EQ(d.events, s.events) << "seed=" << seed
                                          << " lane=" << i;
            EXPECT_EQ(d.advances, s.advances) << "seed=" << seed
                                              << " lane=" << i;
            EXPECT_EQ(d.stalls, s.stalls) << "seed=" << seed
                                          << " lane=" << i;
            EXPECT_EQ(d.msgsIn, s.msgsIn) << "seed=" << seed
                                          << " lane=" << i;
            EXPECT_EQ(d.maxHorizonLag, s.maxHorizonLag)
                << "seed=" << seed << " lane=" << i;
        }
        // The dense coordinator dispatches every lane in every round
        // that executes; the sparse one only the runnable subset, so
        // its dispatch count can never exceed the reference's.
        EXPECT_LE(sparseStats.laneDispatches,
                  denseStats.laneDispatches);
    }
}

TEST(ShardChannelDeath, SameLaneSendViolatingLookaheadDies)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_DEATH(
        {
            // Both endpoints on the single lane: the send takes the
            // plain scheduleAt path, but the declared latency is
            // still a contract — a violation must fail in the default
            // serial configuration, not only once the endpoints land
            // on different lanes.
            ShardedEventKernel kern(1);
            ShardChannel &ch = kern.channel("t.req", deviceShard,
                                            deviceShard, 100);
            kern.lane(0).scheduleAt(
                50, [&ch] { ch.send(149, [] {}); });
            kern.run();
        },
        "violates declared lookahead");
}

TEST(ShardChannelDeath, RedeclarationWithNewEndpointsDies)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_DEATH(
        {
            ShardedEventKernel kern(2);
            kern.assignShard(deviceShard, 0);
            kern.assignShard(cpuShard(0), 1);
            kern.channel("t.req", deviceShard, cpuShard(0), 100);
            kern.channel("t.req", cpuShard(0), deviceShard, 100);
        },
        "redeclared with different endpoints");
}

TEST(ShardLanesEnv, DefaultsAndParses)
{
    {
        ScopedEnv e("VIRTSIM_SHARDS", nullptr);
        EXPECT_EQ(shardLanes(), 1);
    }
    {
        ScopedEnv e("VIRTSIM_SHARDS", "4");
        EXPECT_EQ(shardLanes(), 4);
    }
}

TEST(ShardLanesEnvDeath, RejectsZeroAndGarbage)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    {
        ScopedEnv e("VIRTSIM_SHARDS", "0");
        EXPECT_DEATH((void)shardLanes(), "must be positive");
    }
    {
        ScopedEnv e("VIRTSIM_SHARDS", "lots");
        EXPECT_DEATH((void)shardLanes(), "positive integer");
    }
}

TEST(ShardTelemetry, PublishesCountersAndGauges)
{
    ShardedEventKernel kern(2);
    kern.assignShard(deviceShard, 0);
    kern.assignShard(cpuShard(0), 1);
    ShardChannel &req = kern.channel("t.req", deviceShard,
                                     cpuShard(0), 100);
    int fired = 0;
    kern.lane(0).scheduleAt(10, [&] {
        req.send(200, [&fired] { ++fired; });
    });
    // Give the destination lane pending work so the round loop runs
    // a bounded multi-lane schedule rather than a single drain.
    kern.lane(1).scheduleAt(5, [&fired] { ++fired; });
    kern.run();
    EXPECT_EQ(fired, 2);

    MetricsRegistry reg;
    kern.publishStats(reg);
    const MetricsSnapshot snap = reg.snapshot();
    std::uint64_t lanes = 0, rounds = 0, events = 0, msgs = 0;
    for (const auto &row : snap.counters) {
        if (row.name == "shard.lanes")
            lanes = row.value;
        else if (row.name == "shard.rounds")
            rounds = row.value;
        else if (row.name == "shard.lane1.events")
            events = row.value;
        else if (row.name == "shard.lane1.msgs_in")
            msgs = row.value;
    }
    EXPECT_EQ(lanes, 2u);
    EXPECT_GE(rounds, 1u);
    EXPECT_EQ(events, 2u); // local event + channel message
    EXPECT_EQ(msgs, 1u);

    TimelineSampler tl;
    const std::size_t before = tl.gaugeCount();
    kern.registerGauges(tl);
    // Three aggregates plus the per-lane trio (2 lanes is far below
    // the per-lane cap).
    EXPECT_EQ(tl.gaugeCount(), before + 3 + 2 * 3);
    EXPECT_GE(tl.findGauge("shard.lanes_live"), 0);
    EXPECT_GE(tl.findGauge("shard.stall_total"), 0);
    EXPECT_GE(tl.findGauge("shard.lag_max"), 0);
    EXPECT_GE(tl.findGauge("shard.lane0.depth"), 0);
    EXPECT_GE(tl.findGauge("shard.lane1.lag"), 0);
    EXPECT_GE(tl.findGauge("shard.lane1.stalls"), 0);
}

TEST(ShardTelemetry, PerLaneGaugesCappedAtHighLaneCounts)
{
    ShardedEventKernel kern(ShardedEventKernel::perLaneGaugeCap + 1);
    TimelineSampler tl;
    const std::size_t before = tl.gaugeCount();
    kern.registerGauges(tl);
    // Aggregates only: a fleet-scale kernel must not flood the
    // timeline with hundreds of per-lane series.
    EXPECT_EQ(tl.gaugeCount(), before + 3);
    EXPECT_LT(tl.findGauge("shard.lane0.depth"), 0);
}

TEST(ShardTelemetry, PublishSkipsIdleLanes)
{
    // 8 lanes, only two of them ever do anything: the idle six must
    // not publish all-zero counter rows.
    ShardedEventKernel kern(8);
    kern.assignShard(deviceShard, 0);
    kern.assignShard(cpuShard(0), 1);
    ShardChannel &req = kern.channel("t.req", deviceShard,
                                     cpuShard(0), 100);
    int fired = 0;
    kern.lane(0).scheduleAt(10, [&] {
        req.send(200, [&fired] { ++fired; });
    });
    kern.run();
    EXPECT_EQ(fired, 1);

    MetricsRegistry reg;
    kern.publishStats(reg);
    const MetricsSnapshot snap = reg.snapshot();
    std::uint64_t activeRows = 0;
    bool sawIdleLane = false;
    for (const auto &row : snap.counters) {
        if (row.name == "shard.lanes_active")
            activeRows = row.value;
        if (row.name.rfind("shard.lane7.", 0) == 0 ||
            row.name.rfind("shard.lane4.", 0) == 0)
            sawIdleLane = true;
    }
    EXPECT_EQ(activeRows, 2u);
    EXPECT_FALSE(sawIdleLane);
}

TEST(ShardSweep, ShardedRunInsideSweepSerializes)
{
    const FleetConfig cfg = smallFleet();
    const FleetResult direct = runNetperfRrFleet(cfg, 4);

    ScopedEnv jobs("VIRTSIM_JOBS", "2");
    const std::vector<int> items = {0, 1};
    const auto results =
        parallelSweep(items, [&cfg](int) {
            return runNetperfRrFleet(cfg, 4);
        });
    ASSERT_EQ(results.size(), 2u);
    for (const FleetResult &r : results) {
        EXPECT_TRUE(direct.sameModelledResult(r));
        // Inside a sweep worker the kernel must not spin up its own
        // crew on top of the sweep pool: rounds serialize.
        EXPECT_EQ(r.parallelRounds, 0u);
    }
}

TEST(ShardsEnv, ClassicTestbedResultsIdenticalAcrossShards)
{
    // The single-flow testbed worlds are zero-latency coupled, so
    // every shard lands on lane 0 regardless of VIRTSIM_SHARDS; the
    // modelled output must not depend on the knob.
    double mean[3] = {0, 0, 0};
    const char *settings[3] = {"1", "2", "8"};
    for (int i = 0; i < 3; ++i) {
        ScopedEnv e("VIRTSIM_SHARDS", settings[i]);
        Testbed tb(TestbedConfig{.kind = SutKind::KvmArm,
                                 .seed = 911});
        NetperfRrConfig nc;
        nc.transactions = 40;
        mean[i] = runNetperfRr(tb, nc).timePerTransUs;
    }
    EXPECT_EQ(mean[0], mean[1]);
    EXPECT_EQ(mean[0], mean[2]);
}

TEST(ShardsEnv, Table5ExportsByteIdenticalAcrossShards)
{
    // Satellite of the determinism bar: metrics and timeline exports
    // from the Table V netperf path must be byte-identical at every
    // VIRTSIM_SHARDS value (classic worlds place every component on
    // lane 0, so all stamping lands in segment 0 whatever the knob
    // says; no serial fallback is involved).
    auto runOnce = [](const char *shards) {
        ScopedEnv s("VIRTSIM_SHARDS", shards);
        ScopedEnv m("VIRTSIM_METRICS", "/tmp/shard_t5_m.json");
        ScopedEnv t("VIRTSIM_TIMELINE", "/tmp/shard_t5_tl.json");
        {
            Testbed tb(TestbedConfig{.kind = SutKind::KvmArm,
                                     .seed = 912});
            NetperfRrConfig nc;
            nc.transactions = 25;
            (void)runNetperfRr(tb, nc);
        }
        return std::pair<std::string, std::string>(
            slurp("/tmp/shard_t5_m.kvm_arm.json"),
            slurp("/tmp/shard_t5_tl.kvm_arm.json"));
    };
    const auto base = runOnce("1");
    ASSERT_FALSE(base.first.empty());
    ASSERT_FALSE(base.second.empty());
    EXPECT_EQ(base, runOnce("2"));
    EXPECT_EQ(base, runOnce("8"));
}

TEST(ShardsEnv, Figure4RowsIdenticalAcrossShards)
{
    AppBenchOptions opt;
    opt.kinds = {SutKind::KvmArm, SutKind::XenArm};
    std::vector<std::vector<double>> scores;
    for (const char *shards : {"1", "2", "8"}) {
        ScopedEnv e("VIRTSIM_SHARDS", shards);
        const auto rows = runFigure4(opt);
        std::vector<double> flat;
        for (const AppBenchRow &row : rows) {
            flat.push_back(row.nativeScoreArm);
            flat.push_back(row.nativeScoreX86);
            for (const auto &cell : row.cells) {
                flat.push_back(cell.score);
                flat.push_back(
                    cell.normalizedOverhead.value_or(-1.0));
            }
        }
        scores.push_back(std::move(flat));
    }
    ASSERT_FALSE(scores[0].empty());
    EXPECT_EQ(scores[0], scores[1]);
    EXPECT_EQ(scores[0], scores[2]);
}

TEST(FleetObservability, ExportsByteIdenticalAcrossLaneCounts)
{
    // The tentpole bar: every export — Perfetto trace, metrics JSON,
    // folded flamegraph, timeline JSON — from the genuinely parallel
    // fleet world must come out byte-identical at every lane count.
    // Sinks are lane-partitioned while stamping; the canonical
    // export-time merge (and the barrier-driven observer flush and
    // timeline sampling) erase the partition from the bytes.
    const FleetConfig cfg = smallFleet();
    ScopedEnv tr("VIRTSIM_TRACE", "/tmp/fleet_obs_tr.json");
    ScopedEnv m("VIRTSIM_METRICS", "/tmp/fleet_obs_m.json");
    ScopedEnv fl("VIRTSIM_FLAME", "/tmp/fleet_obs_fl.folded");
    ScopedEnv tl("VIRTSIM_TIMELINE", "/tmp/fleet_obs_tl.json");
    ScopedEnv noStats("VIRTSIM_SHARD_STATS", nullptr);

    struct Exports
    {
        std::string trace, metrics, flame, timeline;
        bool operator==(const Exports &) const = default;
    };
    auto runOnce = [&cfg](int lanes) {
        (void)runNetperfRrFleet(cfg, lanes);
        return Exports{slurp("/tmp/fleet_obs_tr.fleet.json"),
                       slurp("/tmp/fleet_obs_m.fleet.json"),
                       slurp("/tmp/fleet_obs_fl.fleet.folded"),
                       slurp("/tmp/fleet_obs_tl.fleet.json")};
    };

    const Exports serial = runOnce(1);
    ASSERT_FALSE(serial.trace.empty());
    ASSERT_FALSE(serial.metrics.empty());
    ASSERT_FALSE(serial.flame.empty());
    ASSERT_FALSE(serial.timeline.empty());
    // The trace really recorded the parallel phase: spans and causal
    // flow arrows from the per-CPU service path.
    EXPECT_NE(serial.trace.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(serial.flame.find("edge.lr"), std::string::npos);

    for (int lanes : {2, 8}) {
        const Exports r = runOnce(lanes);
        EXPECT_EQ(serial.trace, r.trace) << "lanes=" << lanes;
        EXPECT_EQ(serial.metrics, r.metrics) << "lanes=" << lanes;
        EXPECT_EQ(serial.flame, r.flame) << "lanes=" << lanes;
        EXPECT_EQ(serial.timeline, r.timeline) << "lanes=" << lanes;
    }
}

TEST(FleetObservability, OverflowCountsExactAndDeterministic)
{
    // Satellite: ring overflow under full-parallelism multi-lane
    // stamping must stay *accounted* — the dropped/truncated counts
    // surface in the metrics export as trace.health.* counters — and
    // repeated runs at a fixed lane count must agree byte-for-byte.
    // (Across lane counts the per-segment fill differs, so overflow
    // determinism is per-partition; the lossless test above covers
    // cross-partition identity.)
    const FleetConfig cfg = smallFleet();
    ScopedEnv cap("VIRTSIM_TRACE_CAPACITY", "256");
    ScopedEnv m("VIRTSIM_METRICS", "/tmp/fleet_ovf_m.json");
    ScopedEnv tr("VIRTSIM_TRACE", "/tmp/fleet_ovf_tr.json");
    ScopedEnv noStats("VIRTSIM_SHARD_STATS", nullptr);

    auto runOnce = [&cfg] {
        (void)runNetperfRrFleet(cfg, 4);
        return slurp("/tmp/fleet_ovf_m.fleet.json");
    };
    const std::string first = runOnce();
    ASSERT_FALSE(first.empty());
    // 256 slots per segment cannot hold the ~5k-record run: the
    // health counters must report the loss.
    EXPECT_NE(first.find("trace.health.dropped"), std::string::npos);
    EXPECT_EQ(first, runOnce());
    EXPECT_EQ(first, runOnce());
}

TEST(FleetObservability, ShardProfileJsonExports)
{
    const FleetConfig cfg = smallFleet();
    ScopedEnv p("VIRTSIM_SHARD_PROFILE", "/tmp/fleet_prof.json");
    const FleetResult r = runNetperfRrFleet(cfg, 4);
    EXPECT_GT(r.parallelRounds, 0u);
    const std::string json = slurp("/tmp/fleet_prof.fleet.json");
    ASSERT_FALSE(json.empty());
    EXPECT_NE(json.find("\"virtsim-shard-profile-2\""),
              std::string::npos);
    EXPECT_NE(json.find("\"lanes\":4"), std::string::npos);
    EXPECT_NE(json.find("\"lanes_profiled\""), std::string::npos);
    EXPECT_NE(json.find("\"lane_detail\""), std::string::npos);
    EXPECT_NE(json.find("\"critical_channels\""), std::string::npos);
    EXPECT_NE(json.find("\"speedup_estimate\""), std::string::npos);
}

TEST(ShardSpeedup, FourLanesBeatSerialOnMulticoreHost)
{
    // The acceptance bar for the sharded kernel: >= 1.5x wall-clock
    // on the 4-CPU fleet at four lanes. Real parallelism needs real
    // CPUs; on smaller hosts (CI shells, containers pinned to one
    // core) the crew cannot beat serial, so the assertion is gated.
    if (std::thread::hardware_concurrency() < 4)
        GTEST_SKIP() << "host has < 4 CPUs; no parallel win possible";

    FleetConfig cfg; // the bench-sized world (4 x 32 x 250)
    const auto wall = [&cfg](int lanes) {
        double best = 1e300;
        for (int rep = 0; rep < 3; ++rep) {
            const auto t0 = std::chrono::steady_clock::now();
            const FleetResult r = runNetperfRrFleet(cfg, lanes);
            const std::chrono::duration<double> dt =
                std::chrono::steady_clock::now() - t0;
            EXPECT_GT(r.transactions, 0u);
            best = std::min(best, dt.count());
        }
        return best;
    };
    const double serial = wall(1);
    const double sharded = wall(4);
    EXPECT_GE(serial / sharded, 1.5)
        << "serial " << serial << "s vs 4-lane " << sharded << "s";
}

TEST(ShardSpeedup, TracedFourLanesBeatTracedSerial)
{
    // The observability bar: tracing must ride the parallel rounds,
    // not serialize them. A traced 4-lane fleet still has to beat a
    // traced serial run by >= 1.3x (tracing adds per-record stores on
    // every lane plus the canonical merge at export, so the bar sits
    // below the untraced 1.5x).
    if (std::thread::hardware_concurrency() < 4)
        GTEST_SKIP() << "host has < 4 CPUs; no parallel win possible";

    FleetConfig cfg; // the bench-sized world (4 x 32 x 250)
    cfg.trace = true;
    const auto wall = [&cfg](int lanes) {
        double best = 1e300;
        for (int rep = 0; rep < 3; ++rep) {
            const auto t0 = std::chrono::steady_clock::now();
            const FleetResult r = runNetperfRrFleet(cfg, lanes);
            const std::chrono::duration<double> dt =
                std::chrono::steady_clock::now() - t0;
            EXPECT_GT(r.transactions, 0u);
            best = std::min(best, dt.count());
        }
        return best;
    };
    const double serial = wall(1);
    const double sharded = wall(4);
    EXPECT_GE(serial / sharded, 1.3)
        << "traced serial " << serial << "s vs traced 4-lane "
        << sharded << "s";
}

TEST(ShardTimeline, BarrierSamplingMatchesAcrossLaneCounts)
{
    // Kernel-level check of the sampling semantics the fleet test
    // exercises end to end: gauges sampled from the barrier rounds at
    // period-aligned instants read the same model state — and render
    // the same JSON — whether the model runs on one lane or three.
    auto runOnce = [](int lanes) {
        ShardedEventKernel kern(lanes);
        Probe probe;
        for (int s = 0; s < 3; ++s)
            kern.assignShard(s, s % lanes);
        ShardChannel &fwd = kern.channel("t.fwd", 0, 1, 50);
        (void)fwd;
        kern.channel("t.rel", 1, 2, 50);

        // A model counter driven by events on every shard. Atomic
        // because concurrent lanes bump it inside a round; the value
        // the coordinator samples at a barrier is the number of
        // events executed below the sampling instant — a pure
        // function of simulated time, whatever the partition.
        static std::atomic<std::int64_t> level;
        level = 0;
        probe.timeline.addGauge("t.level", [] {
            return level.load(std::memory_order_relaxed);
        });
        probe.timeline.enable(100);
        kern.attachProbe(&probe);

        for (int s = 0; s < 3; ++s) {
            EventQueue &q = kern.lane(s % lanes);
            for (Cycles t = 30 + 7 * s; t < 1000; t += 130 + s) {
                q.scheduleAt(t, [] {
                    level.fetch_add(1, std::memory_order_relaxed);
                });
            }
        }
        kern.run();
        return probe.timeline.renderJson(Frequency(2.4));
    };
    const std::string serial = runOnce(1);
    EXPECT_NE(serial.find("t.level"), std::string::npos);
    EXPECT_EQ(serial, runOnce(2));
    EXPECT_EQ(serial, runOnce(3));
}
