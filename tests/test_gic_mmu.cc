/**
 * @file
 * Tests for the interrupt-controller hardware (GIC with
 * virtualization extensions, x86 APIC), the timers, and the memory
 * virtualization hardware (Stage-2 tables, TLBs, broadcast
 * invalidation).
 */

#include <gtest/gtest.h>

#include "hw/gic.hh"
#include "hw/machine.hh"
#include "hw/mmu.hh"
#include "hw/vtimer.hh"

using namespace virtsim;

namespace {

struct GicFixture : public ::testing::Test
{
    EventQueue eq;
    CostModel cm = CostModel::armAtlas();
    StatRegistry stats;
    Gic gic{eq, cm, stats, 4};
};

} // namespace

TEST_F(GicFixture, ExternalRoutesToConfiguredCpu)
{
    PcpuId seen_cpu = -1;
    IrqId seen_irq = -1;
    gic.setPhysIrqHandler([&](Cycles, PcpuId c, IrqId i) {
        seen_cpu = c;
        seen_irq = i;
    });
    gic.routeExternal(spiNicIrq, 2);
    gic.raiseExternal(100, spiNicIrq);
    eq.run();
    EXPECT_EQ(seen_cpu, 2);
    EXPECT_EQ(seen_irq, spiNicIrq);
}

TEST_F(GicFixture, IpiArrivesAfterFlight)
{
    Cycles when = 0;
    gic.setPhysIrqHandler([&](Cycles t, PcpuId, IrqId) { when = t; });
    gic.sendIpi(1000, 3, sgiRescheduleIrq);
    eq.run();
    EXPECT_EQ(when, 1000 + cm.ipiFlight);
}

TEST_F(GicFixture, VirqLifecycle)
{
    // Inject -> pending; ack -> active; complete -> free, at the
    // paper's 71-cycle cost.
    EXPECT_EQ(gic.injectVirq(0, 1, spiNicIrq), 0);
    EXPECT_TRUE(gic.anyVirqLive(1));
    EXPECT_EQ(gic.guestAckVirq(1), spiNicIrq);
    // Acked but not completed: still occupying the LR.
    EXPECT_TRUE(gic.anyVirqLive(1));
    EXPECT_EQ(gic.guestCompleteVirq(1, spiNicIrq), 71u);
    EXPECT_FALSE(gic.anyVirqLive(1));
}

TEST_F(GicFixture, ListRegisterOverflow)
{
    for (std::size_t i = 0; i < numListRegs; ++i)
        EXPECT_GE(gic.injectVirq(0, 0, 40 + static_cast<IrqId>(i)), 0);
    EXPECT_EQ(gic.injectVirq(0, 0, 50), -1);
    EXPECT_EQ(stats.counterValue("gic.lr_overflow"), 1u);
}

TEST_F(GicFixture, AckWithNothingPendingReturnsMinusOne)
{
    EXPECT_EQ(gic.guestAckVirq(0), -1);
}

TEST_F(GicFixture, PerCpuListRegsAreIndependent)
{
    gic.injectVirq(0, 0, 41);
    EXPECT_TRUE(gic.anyVirqLive(0));
    EXPECT_FALSE(gic.anyVirqLive(1));
}

TEST(Apic, InjectAndAck)
{
    EventQueue eq;
    CostModel cm = CostModel::x86Xeon();
    StatRegistry stats;
    Apic apic(eq, cm, stats, 4);
    EXPECT_TRUE(apic.guestEoiTraps()); // the paper's vAPIC-less Xeons
    apic.injectVirq(0, 2, 33);
    EXPECT_EQ(apic.guestAckVirq(2), 33);
    EXPECT_EQ(apic.guestAckVirq(2), -1);
    apic.setVApic(true);
    EXPECT_FALSE(apic.guestEoiTraps());
}

TEST(TimerBank, FiresAtDeadlineOnOwnCpu)
{
    EventQueue eq;
    CostModel cm = CostModel::armAtlas();
    StatRegistry stats;
    Gic gic(eq, cm, stats, 4);
    TimerBank timers(eq, gic, 4);
    PcpuId cpu = -1;
    Cycles when = 0;
    gic.setPhysIrqHandler([&](Cycles t, PcpuId c, IrqId i) {
        EXPECT_EQ(i, ppiVtimerIrq);
        cpu = c;
        when = t;
    });
    timers.program(2, 5000);
    EXPECT_TRUE(timers.armed(2));
    eq.run();
    EXPECT_EQ(cpu, 2);
    EXPECT_EQ(when, 5000u);
    EXPECT_FALSE(timers.armed(2));
}

TEST(TimerBank, CancelSuppressesFire)
{
    EventQueue eq;
    CostModel cm = CostModel::armAtlas();
    StatRegistry stats;
    Gic gic(eq, cm, stats, 2);
    TimerBank timers(eq, gic, 2);
    int fired = 0;
    gic.setPhysIrqHandler([&](Cycles, PcpuId, IrqId) { ++fired; });
    timers.program(0, 1000);
    timers.cancel(0);
    eq.run();
    EXPECT_EQ(fired, 0);
}

TEST(TimerBank, ReprogramReplacesDeadline)
{
    EventQueue eq;
    CostModel cm = CostModel::armAtlas();
    StatRegistry stats;
    Gic gic(eq, cm, stats, 2);
    TimerBank timers(eq, gic, 2);
    std::vector<Cycles> fires;
    gic.setPhysIrqHandler(
        [&](Cycles t, PcpuId, IrqId) { fires.push_back(t); });
    timers.program(0, 1000);
    timers.program(0, 3000);
    eq.run();
    ASSERT_EQ(fires.size(), 1u);
    EXPECT_EQ(fires[0], 3000u);
}

TEST(Stage2Tables, MapLookupUnmap)
{
    Stage2Tables t(5);
    EXPECT_FALSE(t.lookup(0x100).has_value());
    t.map(0x100, 0x900);
    EXPECT_EQ(t.lookup(0x100).value(), 0x900u);
    EXPECT_TRUE(t.isWritable(0x100));
    t.map(0x101, 0x901, false);
    EXPECT_FALSE(t.isWritable(0x101));
    EXPECT_TRUE(t.unmap(0x100));
    EXPECT_FALSE(t.unmap(0x100));
    EXPECT_EQ(t.mappedPages(), 1u);
}

TEST(Tlb, FillHitInvalidate)
{
    Tlb tlb(8);
    EXPECT_FALSE(tlb.lookup(1, 0x10));
    tlb.fill(1, 0x10);
    EXPECT_TRUE(tlb.lookup(1, 0x10));
    EXPECT_FALSE(tlb.lookup(2, 0x10)); // different VMID
    tlb.invalidatePage(1, 0x10);
    EXPECT_FALSE(tlb.lookup(1, 0x10));
}

TEST(Tlb, CapacityEvicts)
{
    Tlb tlb(4);
    for (Ipa p = 0; p < 6; ++p)
        tlb.fill(1, p);
    EXPECT_EQ(tlb.size(), 4u);
    EXPECT_FALSE(tlb.lookup(1, 0)); // oldest evicted
    EXPECT_TRUE(tlb.lookup(1, 5));
}

TEST(Tlb, InvalidateVmidIsSelective)
{
    Tlb tlb(16);
    tlb.fill(1, 0x10);
    tlb.fill(2, 0x20);
    tlb.invalidateVmid(1);
    EXPECT_FALSE(tlb.lookup(1, 0x10));
    EXPECT_TRUE(tlb.lookup(2, 0x20));
}

TEST(Mmu, TranslateChargesWalkOnMissOnly)
{
    CostModel cm = CostModel::armAtlas();
    StatRegistry stats;
    Mmu mmu(cm, stats, 2);
    Stage2Tables t(1);
    t.map(0x40, 0x80);

    auto [pa1, cost1] = mmu.translate(0, t, 0x40);
    EXPECT_EQ(pa1.value(), 0x80u);
    EXPECT_EQ(cost1, cm.pageTableWalk + cm.stage2WalkExtra);

    auto [pa2, cost2] = mmu.translate(0, t, 0x40);
    EXPECT_EQ(pa2.value(), 0x80u);
    EXPECT_EQ(cost2, 0u); // TLB hit

    // Another CPU's TLB is cold.
    auto [pa3, cost3] = mmu.translate(1, t, 0x40);
    EXPECT_EQ(pa3.value(), 0x80u);
    EXPECT_GT(cost3, 0u);
}

TEST(Mmu, FaultOnUnmapped)
{
    CostModel cm = CostModel::armAtlas();
    StatRegistry stats;
    Mmu mmu(cm, stats, 1);
    Stage2Tables t(1);
    auto [pa, cost] = mmu.translate(0, t, 0x999);
    EXPECT_FALSE(pa.has_value());
    EXPECT_GT(cost, 0u);
    EXPECT_EQ(stats.counterValue("mmu.stage2_fault"), 1u);
}

TEST(Mmu, BroadcastInvalidateReachesAllCpusAndChargesByArch)
{
    // The E6 asymmetry: one instruction on ARM, IPI shootdown that
    // scales with CPU count on x86.
    CostModel arm = CostModel::armAtlas();
    CostModel x86 = CostModel::x86Xeon();
    StatRegistry s1, s2;
    Mmu marm(arm, s1, 8), mx86(x86, s2, 8);
    Stage2Tables t(1);
    t.map(0x1, 0x2);

    for (int c = 0; c < 8; ++c)
        (void)marm.translate(c, t, 0x1);
    const Cycles ca = marm.invalidatePageBroadcast(1, 0x1);
    for (int c = 0; c < 8; ++c) {
        auto [pa, cost] = marm.translate(c, t, 0x1);
        EXPECT_GT(cost, 0u) << "cpu " << c << " kept a stale entry";
    }
    const Cycles cx = mx86.invalidatePageBroadcast(1, 0x1);
    EXPECT_EQ(ca, arm.tlbInvalidateBroadcast);
    EXPECT_EQ(cx, x86.tlbInvalidateBroadcast + 7 * x86.ipiFlight);
    EXPECT_GT(cx, ca);
}

TEST(MmuDeath, StaleTlbEntryIsABug)
{
    CostModel cm = CostModel::armAtlas();
    StatRegistry stats;
    Mmu mmu(cm, stats, 1);
    Stage2Tables t(1);
    t.map(0x7, 0x8);
    (void)mmu.translate(0, t, 0x7);
    t.unmap(0x7); // without TLB maintenance: simulator bug by contract
    EXPECT_DEATH((void)mmu.translate(0, t, 0x7), "stale TLB");
}
