/**
 * @file
 * Tests for the testbed layer: configuration wiring, the uniform
 * workload surface, and the native baseline paths.
 */

#include <gtest/gtest.h>

#include "core/testbed.hh"

using namespace virtsim;

TEST(Testbed, KindProperties)
{
    EXPECT_FALSE(isVirtualized(SutKind::Native));
    EXPECT_FALSE(isVirtualized(SutKind::NativeX86));
    EXPECT_TRUE(isVirtualized(SutKind::KvmArm));
    EXPECT_EQ(archOf(SutKind::XenArm), Arch::Arm);
    EXPECT_EQ(archOf(SutKind::XenX86), Arch::X86);
    EXPECT_EQ(archOf(SutKind::NativeX86), Arch::X86);
    EXPECT_EQ(to_string(SutKind::KvmArmVhe), "KVM ARM (VHE)");
}

TEST(Testbed, VirtualizedConfigsHaveGuestAndHypervisor)
{
    for (SutKind k : {SutKind::KvmArm, SutKind::XenArm, SutKind::KvmX86,
                      SutKind::XenX86, SutKind::KvmArmVhe}) {
        Testbed tb(TestbedConfig{.kind = k});
        ASSERT_NE(tb.hypervisor(), nullptr) << to_string(k);
        ASSERT_NE(tb.guest(), nullptr) << to_string(k);
        EXPECT_EQ(tb.guest()->numVcpus(), 4) << to_string(k);
        // One VCPU per dedicated PCPU (Section III).
        for (int i = 0; i < 4; ++i)
            EXPECT_EQ(tb.guest()->vcpu(i).pcpu(), i);
    }
}

TEST(Testbed, NativeHasNoHypervisor)
{
    Testbed tb(TestbedConfig{.kind = SutKind::Native});
    EXPECT_EQ(tb.hypervisor(), nullptr);
    EXPECT_EQ(tb.guest(), nullptr);
    EXPECT_FALSE(tb.virtualized());
}

TEST(Testbed, ChargeAccountsOnTheRightCpu)
{
    Testbed tb(TestbedConfig{.kind = SutKind::KvmArm});
    const Cycles end = tb.charge(0, 2, 1000);
    EXPECT_EQ(end, 1000u);
    EXPECT_EQ(tb.machine().cpu(2).busyCycles(), 1000u);
    EXPECT_EQ(tb.frontier(2), 1000u);
    EXPECT_EQ(tb.machine().cpu(0).busyCycles(), 0u);
}

TEST(Testbed, NativeSendReachesClientThroughWire)
{
    Testbed tb(TestbedConfig{.kind = SutKind::Native});
    Packet p;
    p.flow = 1;
    p.bytes = 1500;
    Cycles datalink_tx = 0, client_rx = 0;
    tb.onClientRx = [&](Cycles t, const Packet &) { client_rx = t; };
    tb.send(0, 0, p, [&](Cycles t) { datalink_tx = t; });
    tb.run();
    EXPECT_GT(datalink_tx, 0u);
    EXPECT_GT(client_rx, datalink_tx + tb.wireLatency());
}

TEST(Testbed, NativeClientSendReachesServerTaps)
{
    Testbed tb(TestbedConfig{.kind = SutKind::Native});
    Packet p;
    p.flow = 1;
    p.bytes = 1500;
    Cycles host_rx = 0, vm_rx = 0;
    tb.onHostRx = [&](Cycles t, const Packet &) { host_rx = t; };
    tb.onVmRx = [&](Cycles t, const Packet &) { vm_rx = t; };
    tb.clientSend(0, p);
    tb.run();
    EXPECT_GT(host_rx, tb.wireLatency());
    EXPECT_EQ(vm_rx, host_rx); // same tap natively
}

TEST(Testbed, NativeIpiDeliversToReceiver)
{
    Testbed tb(TestbedConfig{.kind = SutKind::Native});
    Cycles handled = 0;
    tb.sendIpi(0, 0, 3, [&](Cycles t) { handled = t; });
    tb.run();
    EXPECT_GT(handled, tb.machine().costs().ipiFlight);
    // Far cheaper than any virtualized IPI (Table II vs native).
    EXPECT_LT(handled, 3000u);
}

TEST(Testbed, VirtualIpiCostsMoreThanNative)
{
    Testbed nat(TestbedConfig{.kind = SutKind::Native});
    Cycles nat_at = 0;
    nat.sendIpi(0, 0, 1, [&](Cycles t) { nat_at = t; });
    nat.run();

    Testbed kvm(TestbedConfig{.kind = SutKind::KvmArm});
    Cycles kvm_at = 0;
    kvm.sendIpi(0, 0, 1, [&](Cycles t) { kvm_at = t; });
    kvm.run();
    EXPECT_GT(kvm_at, 5 * nat_at);
}

TEST(Testbed, TsoRegressionOnlyAffectsXen)
{
    const std::uint32_t full = 64 * 1024;
    for (SutKind k : {SutKind::Native, SutKind::KvmArm,
                      SutKind::KvmArmVhe}) {
        Testbed tb(TestbedConfig{.kind = k});
        EXPECT_EQ(tb.tsoBytes(), full) << to_string(k);
    }
    Testbed xen(TestbedConfig{.kind = SutKind::XenArm});
    EXPECT_LT(xen.tsoBytes(), full);

    TestbedConfig fixed;
    fixed.kind = SutKind::XenArm;
    fixed.tsoRegression = false;
    Testbed xen_fixed(fixed);
    EXPECT_EQ(xen_fixed.tsoBytes(), full);
}

TEST(Testbed, SetIdleBlocksAndWakes)
{
    Testbed tb(TestbedConfig{.kind = SutKind::KvmArm});
    tb.setIdle(0, true);
    EXPECT_EQ(tb.guest()->vcpu(0).state(), VcpuState::Idle);
    tb.setIdle(0, false);
    EXPECT_EQ(tb.guest()->vcpu(0).state(), VcpuState::Running);
}

TEST(Testbed, DeterministicAcrossIdenticalRuns)
{
    auto run_once = [] {
        Testbed tb(TestbedConfig{.kind = SutKind::KvmArm});
        Cycles at = 0;
        tb.hypervisor()->virtualIpi(0, tb.guest()->vcpu(0),
                                    tb.guest()->vcpu(1),
                                    [&](Cycles t) { at = t; });
        tb.run();
        return at;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(Testbed, CompleteVirqMatchesArchitecture)
{
    Testbed arm(TestbedConfig{.kind = SutKind::KvmArm});
    arm.machine().gic().injectVirq(0, 0, spiNicIrq);
    arm.machine().gic().guestAckVirq(0);
    Cycles arm_at = 0;
    arm.completeVirq(0, 0, [&](Cycles t) { arm_at = t; });
    arm.run();

    Testbed x86(TestbedConfig{.kind = SutKind::KvmX86});
    Cycles x86_at = 0;
    x86.completeVirq(0, 0, [&](Cycles t) { x86_at = t; });
    x86.run();

    EXPECT_EQ(arm_at, 71u);
    EXPECT_GT(x86_at, 10 * arm_at); // the Table II contrast
}
