/**
 * @file
 * Tests for the testbed layer: configuration wiring, the uniform
 * workload surface, and the native baseline paths.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/microbench.hh"
#include "core/netperf.hh"
#include "core/testbed.hh"

using namespace virtsim;

TEST(Testbed, KindProperties)
{
    EXPECT_FALSE(isVirtualized(SutKind::Native));
    EXPECT_FALSE(isVirtualized(SutKind::NativeX86));
    EXPECT_TRUE(isVirtualized(SutKind::KvmArm));
    EXPECT_EQ(archOf(SutKind::XenArm), Arch::Arm);
    EXPECT_EQ(archOf(SutKind::XenX86), Arch::X86);
    EXPECT_EQ(archOf(SutKind::NativeX86), Arch::X86);
    EXPECT_EQ(to_string(SutKind::KvmArmVhe), "KVM ARM (VHE)");
}

TEST(Testbed, VirtualizedConfigsHaveGuestAndHypervisor)
{
    for (SutKind k : {SutKind::KvmArm, SutKind::XenArm, SutKind::KvmX86,
                      SutKind::XenX86, SutKind::KvmArmVhe}) {
        Testbed tb(TestbedConfig{.kind = k});
        ASSERT_NE(tb.hypervisor(), nullptr) << to_string(k);
        ASSERT_NE(tb.guest(), nullptr) << to_string(k);
        EXPECT_EQ(tb.guest()->numVcpus(), 4) << to_string(k);
        // One VCPU per dedicated PCPU (Section III).
        for (int i = 0; i < 4; ++i)
            EXPECT_EQ(tb.guest()->vcpu(i).pcpu(), i);
    }
}

TEST(Testbed, NativeHasNoHypervisor)
{
    Testbed tb(TestbedConfig{.kind = SutKind::Native});
    EXPECT_EQ(tb.hypervisor(), nullptr);
    EXPECT_EQ(tb.guest(), nullptr);
    EXPECT_FALSE(tb.virtualized());
}

TEST(Testbed, ChargeAccountsOnTheRightCpu)
{
    Testbed tb(TestbedConfig{.kind = SutKind::KvmArm});
    const Cycles end = tb.charge(0, 2, 1000);
    EXPECT_EQ(end, 1000u);
    EXPECT_EQ(tb.machine().cpu(2).busyCycles(), 1000u);
    EXPECT_EQ(tb.frontier(2), 1000u);
    EXPECT_EQ(tb.machine().cpu(0).busyCycles(), 0u);
}

TEST(Testbed, NativeSendReachesClientThroughWire)
{
    Testbed tb(TestbedConfig{.kind = SutKind::Native});
    Packet p;
    p.flow = 1;
    p.bytes = 1500;
    Cycles datalink_tx = 0, client_rx = 0;
    tb.onClientRx = [&](Cycles t, const Packet &) { client_rx = t; };
    tb.send(0, 0, p, [&](Cycles t) { datalink_tx = t; });
    tb.run();
    EXPECT_GT(datalink_tx, 0u);
    EXPECT_GT(client_rx, datalink_tx + tb.wireLatency());
}

TEST(Testbed, NativeClientSendReachesServerTaps)
{
    Testbed tb(TestbedConfig{.kind = SutKind::Native});
    Packet p;
    p.flow = 1;
    p.bytes = 1500;
    Cycles host_rx = 0, vm_rx = 0;
    tb.onHostRx = [&](Cycles t, const Packet &) { host_rx = t; };
    tb.onVmRx = [&](Cycles t, const Packet &) { vm_rx = t; };
    tb.clientSend(0, p);
    tb.run();
    EXPECT_GT(host_rx, tb.wireLatency());
    EXPECT_EQ(vm_rx, host_rx); // same tap natively
}

TEST(Testbed, NativeIpiDeliversToReceiver)
{
    Testbed tb(TestbedConfig{.kind = SutKind::Native});
    Cycles handled = 0;
    tb.sendIpi(0, 0, 3, [&](Cycles t) { handled = t; });
    tb.run();
    EXPECT_GT(handled, tb.machine().costs().ipiFlight);
    // Far cheaper than any virtualized IPI (Table II vs native).
    EXPECT_LT(handled, 3000u);
}

TEST(Testbed, VirtualIpiCostsMoreThanNative)
{
    Testbed nat(TestbedConfig{.kind = SutKind::Native});
    Cycles nat_at = 0;
    nat.sendIpi(0, 0, 1, [&](Cycles t) { nat_at = t; });
    nat.run();

    Testbed kvm(TestbedConfig{.kind = SutKind::KvmArm});
    Cycles kvm_at = 0;
    kvm.sendIpi(0, 0, 1, [&](Cycles t) { kvm_at = t; });
    kvm.run();
    EXPECT_GT(kvm_at, 5 * nat_at);
}

TEST(Testbed, TsoRegressionOnlyAffectsXen)
{
    const std::uint32_t full = 64 * 1024;
    for (SutKind k : {SutKind::Native, SutKind::KvmArm,
                      SutKind::KvmArmVhe}) {
        Testbed tb(TestbedConfig{.kind = k});
        EXPECT_EQ(tb.tsoBytes(), full) << to_string(k);
    }
    Testbed xen(TestbedConfig{.kind = SutKind::XenArm});
    EXPECT_LT(xen.tsoBytes(), full);

    TestbedConfig fixed;
    fixed.kind = SutKind::XenArm;
    fixed.tsoRegression = false;
    Testbed xen_fixed(fixed);
    EXPECT_EQ(xen_fixed.tsoBytes(), full);
}

TEST(Testbed, SetIdleBlocksAndWakes)
{
    Testbed tb(TestbedConfig{.kind = SutKind::KvmArm});
    tb.setIdle(0, true);
    EXPECT_EQ(tb.guest()->vcpu(0).state(), VcpuState::Idle);
    tb.setIdle(0, false);
    EXPECT_EQ(tb.guest()->vcpu(0).state(), VcpuState::Running);
}

TEST(Testbed, DeterministicAcrossIdenticalRuns)
{
    auto run_once = [] {
        Testbed tb(TestbedConfig{.kind = SutKind::KvmArm});
        Cycles at = 0;
        tb.hypervisor()->virtualIpi(0, tb.guest()->vcpu(0),
                                    tb.guest()->vcpu(1),
                                    [&](Cycles t) { at = t; });
        tb.run();
        return at;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(Testbed, CompleteVirqMatchesArchitecture)
{
    Testbed arm(TestbedConfig{.kind = SutKind::KvmArm});
    arm.machine().gic().injectVirq(0, 0, spiNicIrq);
    arm.machine().gic().guestAckVirq(0);
    Cycles arm_at = 0;
    arm.completeVirq(0, 0, [&](Cycles t) { arm_at = t; });
    arm.run();

    Testbed x86(TestbedConfig{.kind = SutKind::KvmX86});
    Cycles x86_at = 0;
    x86.completeVirq(0, 0, [&](Cycles t) { x86_at = t; });
    x86.run();

    EXPECT_EQ(arm_at, 71u);
    EXPECT_GT(x86_at, 10 * arm_at); // the Table II contrast
}

// ---------------------------------------------------------------------
// Testbed reset and the per-worker cache (core/testbed acquireTestbed).
// Reset must be *fresh-equivalent*: a recycled world runs any workload
// to byte-identical results, which is what keeps sweep output
// independent of VIRTSIM_JOBS and VIRTSIM_POOL_CACHE.
// ---------------------------------------------------------------------

namespace {

/** Scoped environment override; restores the prior value on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name(name)
    {
        const char *prev = std::getenv(name);
        if (prev)
            saved = prev;
        had = prev != nullptr;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (had)
            ::setenv(name.c_str(), saved.c_str(), 1);
        else
            ::unsetenv(name.c_str());
    }

  private:
    std::string name;
    std::string saved;
    bool had = false;
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

} // namespace

TEST(TestbedReset, VirtualizedResetMatchesFreshConstruction)
{
    const TestbedConfig tc{.kind = SutKind::KvmArm, .seed = 1234};

    // Dirty a testbed thoroughly (the full suite creates a second VM,
    // switches worlds, exercises the backend), then reset it.
    Testbed recycled(tc);
    {
        MicrobenchSuite dirty(recycled);
        (void)dirty.runAll(5);
    }
    recycled.reset();

    Testbed fresh(tc);
    MicrobenchSuite a(recycled);
    MicrobenchSuite b(fresh);
    const auto ra = a.runAll(10);
    const auto rb = b.runAll(10);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
        SCOPED_TRACE(to_string(ra[i].op));
        EXPECT_EQ(ra[i].cycles.count(), rb[i].cycles.count());
        EXPECT_EQ(ra[i].cycles.mean(), rb[i].cycles.mean());
        EXPECT_EQ(ra[i].cycles.min(), rb[i].cycles.min());
        EXPECT_EQ(ra[i].cycles.max(), rb[i].cycles.max());
    }
    EXPECT_EQ(recycled.queue().now(), fresh.queue().now());
    EXPECT_EQ(recycled.metrics().snapshot().toJson(),
              fresh.metrics().snapshot().toJson());
}

TEST(TestbedReset, NativeResetMatchesFreshConstruction)
{
    const TestbedConfig tc{.kind = SutKind::Native, .seed = 99};

    Testbed recycled(tc);
    (void)runNetperfRr(recycled); // dirty pass
    recycled.reset();

    Testbed fresh(tc);
    const NetperfRrResult r1 = runNetperfRr(recycled);
    const NetperfRrResult r2 = runNetperfRr(fresh);
    EXPECT_EQ(r1.transPerSec, r2.transPerSec);
    EXPECT_EQ(r1.timePerTransUs, r2.timePerTransUs);
    EXPECT_EQ(recycled.queue().now(), fresh.queue().now());
    EXPECT_EQ(recycled.metrics().snapshot().toJson(),
              fresh.metrics().snapshot().toJson());
}

TEST(TestbedCache, ReusesIdleEntryOfEqualConfig)
{
    ASSERT_TRUE(testbedCacheEnabled());
    const TestbedConfig tc{.kind = SutKind::KvmArm, .seed = 777};
    const TestbedCacheStats before = testbedCacheStats();
    Testbed *first = nullptr;
    {
        TestbedLease l = acquireTestbed(tc);
        first = l.get();
        ASSERT_NE(first, nullptr);
    }
    {
        TestbedLease l = acquireTestbed(tc);
        EXPECT_EQ(l.get(), first); // same world, reset and reissued
    }
    const TestbedCacheStats after = testbedCacheStats();
    EXPECT_EQ(after.misses, before.misses + 1);
    EXPECT_EQ(after.hits, before.hits + 1);
}

TEST(TestbedCache, ConcurrentLeasesGetDistinctWorlds)
{
    // A leased entry must never be handed out again before release —
    // aliasing two users onto one EventQueue would corrupt both.
    const TestbedConfig tc{.kind = SutKind::XenArm, .seed = 778};
    TestbedLease a = acquireTestbed(tc);
    TestbedLease b = acquireTestbed(tc);
    EXPECT_NE(a.get(), b.get());
}

TEST(TestbedCache, DistinctConfigsGetDistinctWorlds)
{
    TestbedConfig a{.kind = SutKind::XenArm, .seed = 779};
    TestbedConfig b = a;
    b.zeroCopyGrants = true;
    TestbedLease la = acquireTestbed(a);
    TestbedLease lb = acquireTestbed(b);
    EXPECT_NE(la.get(), lb.get());
}

TEST(TestbedCache, EnvKnobsDisableCaching)
{
    {
        ScopedEnv e("VIRTSIM_POOL_CACHE", "0");
        EXPECT_FALSE(testbedCacheEnabled());
    }
    // Observability no longer bypasses the cache: exports flush at
    // lease release and reset() restores every sink, so cached runs
    // export byte-identically to cold builds (see
    // ObservabilityExportsMatchColdBuilds below).
    {
        ScopedEnv e("VIRTSIM_TRACE", "/tmp/trace.json");
        EXPECT_TRUE(testbedCacheEnabled());
    }
    {
        ScopedEnv e("VIRTSIM_METRICS", "/tmp/metrics.json");
        EXPECT_TRUE(testbedCacheEnabled());
    }
    {
        ScopedEnv e("VIRTSIM_FLAME", "/tmp/flame.folded");
        EXPECT_TRUE(testbedCacheEnabled());
    }
    EXPECT_TRUE(testbedCacheEnabled());
}

TEST(TestbedCache, ObservabilityExportsMatchColdBuilds)
{
    // The cache no longer auto-bypasses when a sink is armed; the
    // lease flushes exports on release and reset() re-arms them, so a
    // cached world must produce the same export bytes as a cold one.
    ScopedEnv m("VIRTSIM_METRICS", "/tmp/tb_obs_metrics.json");
    ScopedEnv t("VIRTSIM_TIMELINE", "/tmp/tb_obs_timeline.json");

    // Unique seed: an earlier test's cached world for this config
    // would have been built without the sinks armed.
    const TestbedConfig tc{.kind = SutKind::KvmArm, .seed = 79001};
    NetperfRrConfig nc;
    nc.transactions = 25;

    struct Exports
    {
        std::string metrics, timeline;
        bool operator==(const Exports &o) const
        {
            return metrics == o.metrics && timeline == o.timeline;
        }
    };
    auto runOnce = [&] {
        {
            TestbedLease l = acquireTestbed(tc);
            (void)runNetperfRr(*l.get(), nc);
        } // lease release flushes the exports
        return Exports{slurp("/tmp/tb_obs_metrics.kvm_arm.json"),
                       slurp("/tmp/tb_obs_timeline.kvm_arm.json")};
    };

    Exports cold;
    {
        ScopedEnv off("VIRTSIM_POOL_CACHE", "0");
        cold = runOnce();
    }
    ASSERT_FALSE(cold.metrics.empty());
    ASSERT_FALSE(cold.timeline.empty());

    const TestbedCacheStats before = testbedCacheStats();
    const Exports cachedMiss = runOnce(); // builds the cache entry
    const Exports cachedHit = runOnce();  // reset() + rerun
    const TestbedCacheStats after = testbedCacheStats();
    EXPECT_EQ(after.misses, before.misses + 1);
    EXPECT_EQ(after.hits, before.hits + 1);

    EXPECT_TRUE(cachedMiss == cold) << "cache-miss export differs";
    EXPECT_TRUE(cachedHit == cold) << "cache-hit export differs";
}

TEST(TestbedCache, BypassedLeaseOwnsItsWorld)
{
    ScopedEnv e("VIRTSIM_POOL_CACHE", "0");
    const TestbedCacheStats before = testbedCacheStats();
    const TestbedConfig tc{.kind = SutKind::KvmArm, .seed = 780};
    {
        TestbedLease l = acquireTestbed(tc);
        ASSERT_NE(l.get(), nullptr);
        EXPECT_TRUE(l->virtualized());
    }
    const TestbedCacheStats after = testbedCacheStats();
    EXPECT_EQ(after.hits, before.hits);
    EXPECT_EQ(after.misses, before.misses);
}

TEST(TestbedCache, AttributionSurvivesReuse)
{
    // reset() detaches the analyzer and disables the sink; a repeat
    // attribution() user on a cache hit must get a live pipeline and
    // identical blame both passes.
    const TestbedConfig tc{.kind = SutKind::KvmArm, .seed = 781};
    std::uint64_t ops[2] = {0, 0};
    for (int pass = 0; pass < 2; ++pass) {
        TestbedLease tb = acquireTestbed(tc);
        CausalAnalyzer &an = tb->attribution();
        MicrobenchSuite suite(*tb);
        (void)suite.run(MicroOp::Hypercall, 5);
        const BlameReport r = an.report(&tb->trace());
        EXPECT_FALSE(r.terms.empty()) << "pass " << pass;
        ops[pass] = r.operations;
    }
    EXPECT_EQ(ops[0], ops[1]);
}
