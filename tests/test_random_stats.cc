/**
 * @file
 * Unit and property tests for the PRNG and the statistics
 * accumulators.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.hh"
#include "sim/stats.hh"

using namespace virtsim;

TEST(Random, DeterministicPerSeed)
{
    Random a(123), b(123), c(124);
    bool any_differ = false;
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next();
        EXPECT_EQ(va, b.next());
        if (va != c.next())
            any_differ = true;
    }
    EXPECT_TRUE(any_differ);
}

TEST(Random, UniformInUnitInterval)
{
    Random r(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Random, UniformRangeRespectsBounds)
{
    Random r(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(5.0, 9.0);
        EXPECT_GE(u, 5.0);
        EXPECT_LT(u, 9.0);
    }
}

TEST(Random, BelowRespectsBound)
{
    Random r(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Random, ExponentialMeanRoughlyCorrect)
{
    Random r(11);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(50.0);
    EXPECT_NEAR(sum / n, 50.0, 1.5);
}

TEST(Random, NormalNeverNegative)
{
    Random r(13);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GE(r.normal(1.0, 5.0), 0.0);
}

TEST(Random, ChanceExtremes)
{
    Random r(15);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(SampleStat, BasicMoments)
{
    SampleStat s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
    EXPECT_NEAR(s.stddev(), std::sqrt(1.25), 1e-12);
}

TEST(SampleStat, PercentileNearestRank)
{
    SampleStat s;
    for (int i = 1; i <= 100; ++i)
        s.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_NEAR(s.median(), 50.5, 1e-9);
    EXPECT_NEAR(s.percentile(90), 90.1, 0.2);
}

TEST(SampleStat, SingleSample)
{
    SampleStat s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.median(), 42.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SampleStat, ResetClears)
{
    SampleStat s;
    s.add(1.0);
    s.reset();
    EXPECT_TRUE(s.empty());
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(SampleStatDeath, EmptyMeanPanics)
{
    SampleStat s;
    EXPECT_DEATH((void)s.mean(), "mean of empty");
}

TEST(Counter, IncrementAndReset)
{
    Counter c;
    c.inc();
    c.inc(5);
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(StatRegistry, CreatesOnFirstUse)
{
    StatRegistry reg;
    reg.counter("a").inc(3);
    reg.stat("b").add(1.5);
    EXPECT_EQ(reg.counterValue("a"), 3u);
    EXPECT_EQ(reg.counterValue("missing"), 0u);
    EXPECT_EQ(reg.allStats().at("b").count(), 1u);
}

TEST(StatRegistry, RenderMentionsEverything)
{
    StatRegistry reg;
    reg.counter("exits").inc(7);
    reg.stat("latency").add(2.0);
    const std::string out = reg.render();
    EXPECT_NE(out.find("exits = 7"), std::string::npos);
    EXPECT_NE(out.find("latency"), std::string::npos);
}

/** Property: percentile is monotone in p and bounded by min/max. */
class PercentileMonotoneTest : public ::testing::TestWithParam<int>
{
};

TEST_P(PercentileMonotoneTest, MonotoneAndBounded)
{
    Random r(static_cast<std::uint64_t>(GetParam()));
    SampleStat s;
    const int n = 50 + GetParam() * 37;
    for (int i = 0; i < n; ++i)
        s.add(r.uniform(-100.0, 100.0));
    double prev = s.min();
    for (double p = 0; p <= 100.0; p += 2.5) {
        const double v = s.percentile(p);
        EXPECT_GE(v, prev - 1e-9);
        EXPECT_GE(v, s.min());
        EXPECT_LE(v, s.max());
        prev = v;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PercentileMonotoneTest,
                         ::testing::Range(1, 9));
