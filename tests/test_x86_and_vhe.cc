/**
 * @file
 * Tests for the x86 hypervisors (shared VMCS mechanism, EOI traps,
 * vAPIC ablation) and the ARMv8.1 VHE model (Section VI).
 */

#include <gtest/gtest.h>

#include "core/testbed.hh"

using namespace virtsim;

TEST(KvmX86, HypercallCosts1300)
{
    Testbed tb(TestbedConfig{.kind = SutKind::KvmX86});
    Cycles done_at = 0;
    tb.hypervisor()->hypercall(0, tb.guest()->vcpu(0),
                               [&](Cycles t) { done_at = t; });
    tb.run();
    EXPECT_EQ(done_at, 1300u); // Table II
}

TEST(XenX86, HypercallCosts1228)
{
    Testbed tb(TestbedConfig{.kind = SutKind::XenX86});
    Cycles done_at = 0;
    tb.hypervisor()->hypercall(0, tb.guest()->vcpu(0),
                               [&](Cycles t) { done_at = t; });
    tb.run();
    EXPECT_EQ(done_at, 1228u); // Table II: nearly identical to KVM —
                               // same hardware mechanism
}

TEST(X86, EoiTrapsWithoutVapic)
{
    Testbed tb(TestbedConfig{.kind = SutKind::KvmX86});
    Cycles done_at = 0;
    tb.hypervisor()->virqComplete(0, tb.guest()->vcpu(0),
                                  [&](Cycles t) { done_at = t; });
    tb.run();
    EXPECT_EQ(done_at, 1556u); // Table II: ~22x the ARM fast path
    EXPECT_GT(tb.machine().stats().counterValue(
                  "kvm.virq_complete_trap"),
              0u);
}

TEST(X86, VapicRemovesTheEoiTrap)
{
    // Table II discussion: "newer x86 hardware with vAPIC support
    // should perform more comparably to ARM".
    TestbedConfig tc;
    tc.kind = SutKind::KvmX86;
    tc.vApic = true;
    Testbed tb(tc);
    Cycles done_at = 0;
    tb.hypervisor()->virqComplete(0, tb.guest()->vcpu(0),
                                  [&](Cycles t) { done_at = t; });
    tb.run();
    EXPECT_LT(done_at, 200u);
    EXPECT_EQ(tb.machine().stats().counterValue("kvm.vm_exits"), 0u);
}

TEST(X86, IoSignalOutUsesIoeventfdFastPath)
{
    Testbed tb(TestbedConfig{.kind = SutKind::KvmX86});
    Cycles done_at = 0;
    tb.hypervisor()->ioSignalOut(0, tb.guest()->vcpu(0),
                                 [&](Cycles t) { done_at = t; });
    tb.run();
    EXPECT_EQ(done_at, 560u); // Table II's standout number
}

TEST(XenX86, VmSwitchIsTheSlowestOfAllFour)
{
    Testbed tb(TestbedConfig{.kind = SutKind::XenX86});
    auto *xen = dynamic_cast<XenX86 *>(tb.hypervisor());
    ASSERT_NE(xen, nullptr);
    Vm &vm1 = xen->createVm("vm1", 4, {0, 1, 2, 3});
    Cycles done_at = 0;
    xen->vmSwitch(0, tb.guest()->vcpu(0), vm1.vcpu(0),
                  [&](Cycles t) { done_at = t; });
    tb.run();
    EXPECT_EQ(done_at, 10534u); // Table II
}

TEST(X86, GuestStateSurvivesVmcsRoundTrips)
{
    Testbed tb(TestbedConfig{.kind = SutKind::KvmX86});
    Vcpu &v = tb.guest()->vcpu(0);
    auto &gp = tb.machine().cpu(0).regs().bank(RegClass::Gp);
    gp.assign(gp.size(), 0xfeed);
    bool ok = false;
    tb.hypervisor()->hypercall(0, v, [&](Cycles) {
        ok = tb.machine().cpu(0).regs().bank(RegClass::Gp)[0] == 0xfeed;
    });
    tb.run();
    EXPECT_TRUE(ok);
}

TEST(Vhe, HypercallNearTheType1FastPath)
{
    Testbed tb(TestbedConfig{.kind = SutKind::KvmArmVhe});
    Cycles done_at = 0;
    tb.hypervisor()->hypercall(0, tb.guest()->vcpu(0),
                               [&](Cycles t) { done_at = t; });
    tb.run();
    // Section VI: more than an order of magnitude under split-mode
    // KVM (6,500), approaching Xen ARM (376).
    EXPECT_LT(done_at, 650u);
    EXPECT_GT(done_at, 376u);
}

TEST(Vhe, NoEl1StateMovesOnTransition)
{
    Testbed tb(TestbedConfig{.kind = SutKind::KvmArmVhe});
    auto *vhe = dynamic_cast<KvmArmVhe *>(tb.hypervisor());
    ASSERT_NE(vhe, nullptr);
    Vcpu &v = tb.guest()->vcpu(0);
    TraceSink &sink = tb.trace();
    sink.enable();
    bool done = false;
    vhe->hypercall(0, v, [&](Cycles) { done = true; });
    tb.run();
    sink.disable();
    ASSERT_TRUE(done);
    sink.forEach([](const TraceRecord &r) {
        if (r.kind != TraceKind::Begin)
            return;
        const auto info = switchTapInfo(r.tap);
        if (!info)
            return;
        EXPECT_EQ(info->cls, RegClass::Gp)
            << "VHE transition touched " << to_string(info->cls);
    });
}

TEST(Vhe, VmSwitchStillMovesTheFullEl1World)
{
    // VHE removes the host from EL1; VMs still live there, so
    // VM-to-VM switches keep their cost.
    Testbed tb(TestbedConfig{.kind = SutKind::KvmArmVhe});
    auto *vhe = dynamic_cast<KvmArmVhe *>(tb.hypervisor());
    Vm &vm1 = vhe->createVm("vm1", 4, {0, 1, 2, 3});
    Cycles done_at = 0;
    vhe->vmSwitch(0, tb.guest()->vcpu(0), vm1.vcpu(0),
                  [&](Cycles t) { done_at = t; });
    tb.run();
    EXPECT_GT(done_at, 9000u);
}

TEST(Vhe, IoLatencyOutImprovesDramatically)
{
    Testbed vhe_tb(TestbedConfig{.kind = SutKind::KvmArmVhe});
    Cycles vhe_at = 0;
    vhe_tb.hypervisor()->ioSignalOut(0, vhe_tb.guest()->vcpu(0),
                                     [&](Cycles t) { vhe_at = t; });
    vhe_tb.run();
    EXPECT_LT(vhe_at, 6024u / 2); // vs split-mode Table II value
}

/** Table II orderings that define the paper's Type 1 / Type 2 story,
 *  checked across every hypervisor pair via the public API. */
TEST(CrossHypervisor, HypercallOrdering)
{
    auto hypercall = [](SutKind k) {
        Testbed tb(TestbedConfig{.kind = k});
        Cycles at = 0;
        tb.hypervisor()->hypercall(0, tb.guest()->vcpu(0),
                                   [&](Cycles t) { at = t; });
        tb.run();
        return at;
    };
    const Cycles xen_arm = hypercall(SutKind::XenArm);
    const Cycles kvm_arm = hypercall(SutKind::KvmArm);
    const Cycles kvm_x86 = hypercall(SutKind::KvmX86);
    const Cycles xen_x86 = hypercall(SutKind::XenX86);
    const Cycles vhe = hypercall(SutKind::KvmArmVhe);

    // Xen ARM < 1/3 x86 < split-mode KVM ARM; VHE restores the fast
    // path for Type 2.
    EXPECT_LT(xen_arm * 3, kvm_x86);
    EXPECT_LT(xen_arm * 3, xen_x86);
    EXPECT_GT(kvm_arm, 10 * xen_arm);
    EXPECT_GT(kvm_arm, 4 * kvm_x86);
    EXPECT_LT(vhe, 2 * xen_arm);
}
