#!/usr/bin/env python3
"""Validate exported VIRTSIM_LATENCY JSON files.

Usage: scripts/validate_latency.py [--require-pass] FILE [FILE...]

Checks each file against the "virtsim-latency-1" schema and
recomputes every derived number from the sparse bucket arrays the
exporter embeds for exactly this purpose:

  - quantiles (p50/p90/p99/p999) must be monotone and must equal a
    nearest-rank recomputation over the log-linear bucket scheme,
  - per-histogram counts must equal the bucket mass, and the exact
    sum must lie within the bucket bounds,
  - per-CPU phase counts must fold to the aggregate,
  - phase decomposition sanity: mean server_queue + mean service
    must not exceed mean RTT,
  - SLO verdicts must be consistent: requests/violations match the
    judged phase's histogram, the violation fraction is
    violations/requests, and the pass flag matches the quantile and
    fraction tests it claims to encode.

With --require-pass the validator additionally fails when any SLO
verdict has pass=false (for nominal-workload artifacts; overload
artifacts are *supposed* to breach).

Exit status: 0 when every file validates, 1 otherwise.
"""

import argparse
import json
import math
import sys

REQUIRED_TOP = [
    "schema", "world", "frequency_ghz", "sub_bucket_bits",
    "requests", "phases", "aggregate", "per_cpu", "slo",
]
PHASES = ["rtt", "client_think", "wire_flight", "server_queue",
          "service"]
REQUIRED_HIST_NONEMPTY = [
    "count", "min_cycles", "max_cycles", "sum_cycles", "mean_us",
    "p50_cycles", "p90_cycles", "p99_cycles", "p999_cycles",
    "buckets",
]
REQUIRED_SLO = [
    "name", "phase", "quantile", "threshold_cycles",
    "max_violation_fraction", "requests", "violations",
    "violation_fraction", "observed_quantile_cycles", "windows",
    "burnt_windows", "pass",
]

U64_MAX = (1 << 64) - 1


class Buckets:
    """The exporter's log-linear scheme (sim/latency.hh), recomputed
    independently: values below 2^(m+1) are exact; above, each octave
    splits into 2^m sub-buckets."""

    def __init__(self, sub_bucket_bits):
        self.m = sub_bucket_bits
        self.subs = 1 << sub_bucket_bits
        self.exact_limit = 2 * self.subs

    def low(self, i):
        if i < self.exact_limit:
            return i
        s = (i >> self.m) - 1
        sub = i & (self.subs - 1)
        return (self.subs + sub) << s

    def high(self, i):
        if i < self.exact_limit:
            return i
        s = (i >> self.m) - 1
        sub = i & (self.subs - 1)
        if s >= 56 and sub == self.subs - 1:
            return U64_MAX
        return ((self.subs + sub + 1) << s) - 1

    def quantile(self, buckets, q, lo, hi):
        """Nearest-rank quantile over a sparse [[index, n], ...]
        array, clamped into the exact observed range — mirrors
        LatencyHistogram::quantile."""
        total = sum(n for _, n in buckets)
        if total == 0:
            return 0
        if q <= 0.0:
            return lo
        if q >= 1.0:
            return hi
        rank = min(max(int(math.ceil(q * total)), 1), total)
        cum = 0
        for i, n in buckets:
            cum += n
            if cum >= rank:
                return min(max(self.high(i), lo), hi)
        return hi

    def count_above(self, buckets, threshold):
        """Strictly-above mass at bucket resolution: every bucket
        whose index exceeds the threshold's bucket — mirrors
        LatencyHistogram::countAbove."""
        ti = self.bucket_of(threshold)
        return sum(n for i, n in buckets if i > ti)

    def bucket_of(self, v):
        if v < self.exact_limit:
            return v
        s = v.bit_length() - (self.m + 1)
        return ((s + 1) << self.m) + ((v >> s) - self.subs)


def check_hist(path, label, h, bk, errors):
    """Validate one histogram object; returns its count."""
    if "count" not in h or "buckets" not in h:
        errors.append(f"{path}: {label}: missing count/buckets")
        return 0
    count = h["count"]
    mass = sum(n for _, n in h["buckets"])
    if mass != count:
        errors.append(
            f"{path}: {label}: bucket mass {mass} != count {count}")
    if count == 0:
        return 0
    for key in REQUIRED_HIST_NONEMPTY:
        if key not in h:
            errors.append(f"{path}: {label}: missing '{key}'")
            return count
    lo, hi = h["min_cycles"], h["max_cycles"]
    if lo > hi:
        errors.append(f"{path}: {label}: min {lo} > max {hi}")
    qs = [h["p50_cycles"], h["p90_cycles"], h["p99_cycles"],
          h["p999_cycles"]]
    if qs != sorted(qs):
        errors.append(f"{path}: {label}: quantiles not monotone {qs}")
    if not (lo <= qs[0] and qs[-1] <= hi):
        errors.append(
            f"{path}: {label}: quantiles escape [min, max]")
    for q, key in ((0.50, "p50_cycles"), (0.90, "p90_cycles"),
                   (0.99, "p99_cycles"), (0.999, "p999_cycles")):
        want = bk.quantile(h["buckets"], q, lo, hi)
        if h[key] != want:
            errors.append(
                f"{path}: {label}: {key}={h[key]} but bucket "
                f"recomputation gives {want}")
    # The exact sum must be consistent with the bucket bounds.
    lo_sum = sum(bk.low(i) * n for i, n in h["buckets"])
    hi_sum = sum(min(bk.high(i), hi) * n for i, n in h["buckets"])
    if not (lo_sum <= h["sum_cycles"] <= hi_sum):
        errors.append(
            f"{path}: {label}: sum {h['sum_cycles']} outside bucket "
            f"bounds [{lo_sum}, {hi_sum}]")
    for i, n in h["buckets"]:
        if n <= 0:
            errors.append(
                f"{path}: {label}: non-positive bucket [{i},{n}]")
    return count


def mean_cycles(h):
    return h["sum_cycles"] / h["count"] if h.get("count") else 0.0


def validate(path, require_pass):
    errors = []
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or invalid JSON: {e}"]

    for key in REQUIRED_TOP:
        if key not in doc:
            errors.append(f"{path}: missing top-level key '{key}'")
    if errors:
        return errors

    if doc["schema"] != "virtsim-latency-1":
        errors.append(f"{path}: unknown schema '{doc['schema']}'")
    if doc["phases"] != PHASES:
        errors.append(f"{path}: unexpected phase set {doc['phases']}")

    bk = Buckets(doc["sub_bucket_bits"])
    agg = doc["aggregate"]
    agg_counts = {}
    for ph in PHASES:
        if ph not in agg:
            errors.append(f"{path}: aggregate missing phase '{ph}'")
            continue
        agg_counts[ph] = check_hist(
            path, f"aggregate.{ph}", agg[ph], bk, errors)

    if doc["requests"] != agg_counts.get("rtt", -1):
        errors.append(
            f"{path}: requests={doc['requests']} != aggregate rtt "
            f"count {agg_counts.get('rtt')}")

    # Per-CPU folds back to the aggregate, phase by phase.
    per_cpu_counts = {ph: 0 for ph in PHASES}
    for entry in doc["per_cpu"]:
        cpu = entry.get("cpu", "?")
        for ph in PHASES:
            if ph not in entry:
                errors.append(
                    f"{path}: cpu {cpu} missing phase '{ph}'")
                continue
            per_cpu_counts[ph] += check_hist(
                path, f"cpu{cpu}.{ph}", entry[ph], bk, errors)
    for ph in PHASES:
        if ph in agg_counts and per_cpu_counts[ph] != agg_counts[ph]:
            errors.append(
                f"{path}: per-cpu {ph} mass {per_cpu_counts[ph]} != "
                f"aggregate {agg_counts[ph]}")

    # Decomposition sanity: the queue-wait and service legs are
    # inside every round trip, so their means cannot exceed it.
    if agg_counts.get("rtt"):
        rtt_mean = mean_cycles(agg["rtt"])
        inner = mean_cycles(agg["server_queue"]) + \
            mean_cycles(agg["service"])
        if inner > rtt_mean * (1.0 + 1e-9):
            errors.append(
                f"{path}: mean server_queue + service ({inner:.1f}) "
                f"exceeds mean rtt ({rtt_mean:.1f})")

    # SLO verdicts re-derive from the judged phase's histogram.
    for v in doc["slo"]:
        for key in REQUIRED_SLO:
            if key not in v:
                errors.append(f"{path}: slo verdict missing '{key}'")
                break
        else:
            name, ph = v["name"], v["phase"]
            label = f"slo '{name}'"
            if ph not in PHASES:
                errors.append(f"{path}: {label}: bad phase '{ph}'")
                continue
            h = agg[ph]
            if v["requests"] != h["count"]:
                errors.append(
                    f"{path}: {label}: requests {v['requests']} != "
                    f"{ph} count {h['count']}")
            above = bk.count_above(h["buckets"],
                                   v["threshold_cycles"])
            if v["violations"] != above:
                errors.append(
                    f"{path}: {label}: violations {v['violations']} "
                    f"!= bucket recomputation {above}")
            frac = (v["violations"] / v["requests"]
                    if v["requests"] else 0.0)
            if abs(v["violation_fraction"] - frac) > 1e-4:
                errors.append(
                    f"{path}: {label}: violation_fraction "
                    f"{v['violation_fraction']} != {frac:.6f}")
            if h["count"]:
                want_q = bk.quantile(h["buckets"], v["quantile"],
                                     h["min_cycles"],
                                     h["max_cycles"])
                if v["observed_quantile_cycles"] != want_q:
                    errors.append(
                        f"{path}: {label}: observed quantile "
                        f"{v['observed_quantile_cycles']} != "
                        f"recomputation {want_q}")
            quantile_ok = (v["observed_quantile_cycles"] <=
                           v["threshold_cycles"])
            fraction_ok = (v["violations"] <=
                           v["max_violation_fraction"] *
                           v["requests"])
            want_pass = quantile_ok and fraction_ok
            if v["pass"] != want_pass:
                errors.append(
                    f"{path}: {label}: pass={v['pass']} but "
                    f"quantile_ok={quantile_ok} "
                    f"fraction_ok={fraction_ok}")
            if v["burnt_windows"] > v["windows"]:
                errors.append(
                    f"{path}: {label}: burnt_windows > windows")
            if require_pass and not v["pass"]:
                errors.append(
                    f"{path}: {label}: SLO breached "
                    f"(--require-pass)")
    return errors


def main():
    ap = argparse.ArgumentParser(
        description="Validate virtsim-latency-1 JSON exports")
    ap.add_argument("files", nargs="+")
    ap.add_argument("--require-pass", action="store_true",
                    help="fail when any SLO verdict has pass=false")
    args = ap.parse_args()

    failed = False
    for path in args.files:
        errors = validate(path, args.require_pass)
        if errors:
            failed = True
            for e in errors:
                print(e, file=sys.stderr)
        else:
            print(f"{path}: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
