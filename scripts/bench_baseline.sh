#!/usr/bin/env bash
# Regenerate BENCH_simcore.json — the simulator-infrastructure perf
# baseline future PRs compare against.
#
# Usage: scripts/bench_baseline.sh [build-dir]
#
# Runs the google-benchmark simcore suite and writes the JSON report
# to BENCH_simcore.json at the repo root. Run on an otherwise idle
# machine; numbers are host-dependent, so regenerate the committed
# baseline only from the same class of machine that produced it (or
# note the host change in the commit).
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"
bench="$build_dir/bench/bench_simcore_perf"

if [[ ! -x "$bench" ]]; then
    echo "error: $bench not built (cmake --build $build_dir first)" >&2
    exit 1
fi

# Raw repetitions (no aggregates-only) across several process
# invocations, merged into one report: scripts/bench_compare.sh gates
# on the per-benchmark minimum over everything, which is robust to
# both per-iteration and whole-process scheduling noise (a single
# invocation can land entirely inside a throttled window).
runs=()
for i in 1 2 3; do
    out="$(mktemp)"
    runs+=("$out")
    "$bench" --benchmark_format=json \
             --benchmark_repetitions=6 \
             --benchmark_min_time=0.05 \
             > "$out"
done

python3 - "${runs[@]}" > BENCH_simcore.json <<'PYEOF'
import json
import sys

merged = None
for path in sys.argv[1:]:
    with open(path) as f:
        doc = json.load(f)
    if merged is None:
        merged = doc
    else:
        merged["benchmarks"].extend(doc["benchmarks"])
json.dump(merged, sys.stdout, indent=1)
PYEOF
rm -f "${runs[@]}"
echo "wrote BENCH_simcore.json"
