#!/usr/bin/env bash
# Regenerate BENCH_simcore.json — the simulator-infrastructure perf
# baseline future PRs compare against.
#
# Usage: scripts/bench_baseline.sh [build-dir]
#
# Runs the google-benchmark simcore suite and writes the JSON report
# to BENCH_simcore.json at the repo root. Run on an otherwise idle
# machine; numbers are host-dependent, so regenerate the committed
# baseline only from the same class of machine that produced it (or
# note the host change in the commit).
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"
bench="$build_dir/bench/bench_simcore_perf"

if [[ ! -x "$bench" ]]; then
    echo "error: $bench not built (cmake --build $build_dir first)" >&2
    exit 1
fi

"$bench" --benchmark_format=json \
         --benchmark_repetitions=3 \
         --benchmark_report_aggregates_only=true \
         > BENCH_simcore.json
echo "wrote BENCH_simcore.json"
