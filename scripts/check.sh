#!/usr/bin/env bash
# Repo verification: the tier-1 build+test pass, then a sanitizer
# pass of the test suite.
#
# Usage: scripts/check.sh [--with-tsan]
#
#   tier-1:  cmake + build + ctest in build/        (the seed gate)
#   asan:    AddressSanitizer+UBSan ctest in build-asan/
#   ubsan:   standalone UndefinedBehaviorSanitizer in build-ubsan/ —
#            runs the trace/attribution tests (test_probe,
#            test_attrib), which shift and cast raw 24-byte records;
#            standalone UBSan catches what ASan's interceptors mask.
#   tsan:    (--with-tsan) ThreadSanitizer ctest in build-tsan/ —
#            exercises the parallel sweep runner's thread pool.
set -euo pipefail
cd "$(dirname "$0")/.."

with_tsan=0
for arg in "$@"; do
    case "$arg" in
      --with-tsan) with_tsan=1 ;;
      *) echo "usage: scripts/check.sh [--with-tsan]" >&2; exit 2 ;;
    esac
done

jobs="$(nproc 2>/dev/null || echo 2)"

echo "== tier-1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

echo "== asan+ubsan: build + ctest =="
cmake -B build-asan -S . \
      -DVIRTSIM_SANITIZE=address,undefined \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -j "$jobs"

echo "== ubsan: build + trace/attribution tests =="
cmake -B build-ubsan -S . \
      -DVIRTSIM_SANITIZE=undefined \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-ubsan -j "$jobs" \
      --target test_probe test_attrib
UBSAN_OPTIONS=halt_on_error=1 ctest --test-dir build-ubsan \
    --output-on-failure -j "$jobs" -R 'test_(probe|attrib)'

if [[ "$with_tsan" == 1 ]]; then
    echo "== tsan: build + ctest =="
    cmake -B build-tsan -S . \
          -DVIRTSIM_SANITIZE=thread \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
    cmake --build build-tsan -j "$jobs"
    # The parallel sweep paths, the sharded kernel's crew, and the
    # lane-partitioned observability sinks (test_probe's concurrent
    # stamping, barrier timeline sampling, deferred observer flushes)
    # are what TSan is here for; force both parallelism knobs on so
    # the suite exercises them even on a single-core host (TSan
    # interleaves threads regardless of core count).
    VIRTSIM_JOBS=4 VIRTSIM_SHARDS=4 ctest --test-dir build-tsan \
        --output-on-failure -j "$jobs"
fi

echo "check.sh: all passes OK"
