#!/usr/bin/env bash
# Compare the simulator-infrastructure perf suite against the
# committed baseline (BENCH_simcore.json) and fail on regression.
#
# Usage: scripts/bench_compare.sh [build-dir] [max-regress-pct]
#
# Reruns bench_simcore_perf with the same repetition settings the
# baseline was produced with (scripts/bench_baseline.sh) and compares
# each benchmark's *best* (minimum) real_time across repetitions —
# the minimum is robust to the one-sided scheduling noise of shared
# machines, where means over a few repetitions swing by tens of
# percent. Any benchmark more than max-regress-pct (default 15)
# slower than the baseline fails the gate; faster is always fine.
# Skips cleanly when python3 or the baseline is unavailable so the
# build itself never blocks on it.
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"
max_pct="${2:-15}"
bench="$build_dir/bench/bench_simcore_perf"
baseline="BENCH_simcore.json"

if [[ ! -x "$bench" ]]; then
    echo "error: $bench not built (cmake --build $build_dir first)" >&2
    exit 1
fi
if [[ ! -f "$baseline" ]]; then
    echo "bench_compare: no $baseline baseline; skipping"
    exit 0
fi
if ! command -v python3 >/dev/null 2>&1; then
    echo "bench_compare: python3 unavailable; skipping"
    exit 0
fi

# Several process invocations: the gate takes the minimum across all
# of them, so a single throttled process window cannot fail the gate.
runs=()
for i in 1 2 3; do
    out="$build_dir/bench_simcore_current.$i.json"
    runs+=("$out")
    "$bench" --benchmark_format=json \
             --benchmark_repetitions=6 \
             --benchmark_min_time=0.05 \
             > "$out"
done

python3 - "$baseline" "$max_pct" "${runs[@]}" <<'PYEOF'
import json
import sys

base_path, max_pct = sys.argv[1], float(sys.argv[2])
cur_paths = sys.argv[3:]


def bests(paths):
    out = {}
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        for b in doc.get("benchmarks", []):
            # Prefer raw repetitions (take the minimum); fall back
            # to mean aggregates for baselines recorded
            # aggregates-only.
            if b.get("run_type") == "iteration":
                name = b["run_name"]
                out[name] = min(out.get(name, float("inf")),
                                b["real_time"])
            elif b.get("aggregate_name") == "mean":
                out.setdefault(b["run_name"], b["real_time"])
    return out


base, cur = bests([base_path]), bests(cur_paths)
if not base:
    print("bench_compare: baseline has no usable entries; skipping")
    sys.exit(0)
if not cur:
    # A fresh run with zero usable entries means the bench binary
    # produced no measurements at all — that is a failure, not a
    # skip, or a broken bench would sail through the gate.
    print("bench_compare: ERROR: fresh run produced no usable "
          "benchmark entries", file=sys.stderr)
    sys.exit(1)

failed = False
missing = []
for name in sorted(base):
    b = base[name]
    c = cur.get(name)
    if c is None:
        missing.append(name)
        failed = True
        continue
    delta = (c - b) / b * 100.0
    flag = ""
    if delta > max_pct:
        flag = f"  <-- exceeds +{max_pct:.0f}% budget"
        failed = True
    print(f"  {name}: {b:.0f} -> {c:.0f} ns ({delta:+.1f}%){flag}")

if missing:
    # A benchmark present in the baseline but absent from the fresh
    # run fails loudly: deleting or renaming a bench must not let it
    # dodge the regression gate silently.
    print(f"bench_compare: ERROR: {len(missing)} baseline "
          "benchmark(s) missing from fresh run:", file=sys.stderr)
    for name in missing:
        print(f"  MISSING: {name}", file=sys.stderr)

# Informational: the sharded-kernel parallel win on this host. The
# two benches compute byte-identical results, so the ratio is pure
# wall clock; expect >= 1.5x on a >= 4-core host and <= 1x on a
# single core (the crew cannot beat serial without real CPUs).
serial = cur.get("BM_ShardedKernelSerial")
sharded = cur.get("BM_ShardedKernelShards4")
if serial and sharded:
    print(f"bench_compare: sharded-kernel speedup "
          f"(serial / 4 lanes): {serial / sharded:.2f}x")

# Informational: what the lane-partitioned observability path costs
# while stamping. Traced runs the same world with trace recording
# (ring segments + per-lane profiler histograms) forced on; the ratio
# is the per-record overhead, expected within a few percent of 1x.
traced = cur.get("BM_ShardedKernelTraced")
if sharded and traced:
    print(f"bench_compare: traced sharded overhead "
          f"(traced / untraced, 4 lanes): {traced / sharded:.2f}x")

# Informational: the sparse coordinator's win on fleet-scale lane
# counts. Each pair runs the identical skewed fleet world (results
# byte-identical) under the sparse worklist coordinator vs the dense
# O(lanes^2) reference; the ratio is pure coordinator cost, so it
# holds on any host — expect >= 2x at 256 VMs and growing with lane
# count, the O(active lanes + traffic edges) scaling story.
for vms in (64, 256):
    sparse = cur.get(f"BM_FleetScale{vms}")
    dense = cur.get(f"BM_FleetScale{vms}Dense")
    if sparse and dense:
        print(f"bench_compare: fleet-scale sparse-coordinator "
              f"speedup (dense / sparse, {vms} VMs): "
              f"{dense / sparse:.2f}x")

sys.exit(1 if failed else 0)
PYEOF

echo "bench_compare: all benchmarks within ${max_pct}% of baseline"
