#!/usr/bin/env python3
"""Validate exported VIRTSIM_TIMELINE JSON files.

Usage: scripts/validate_timeline.py FILE [FILE...]

Checks each file against the "virtsim-timeline-1" schema (required
keys, monotone non-negative sample timestamps, well-formed series and
anomaly records) and — unless --allow-anomalies is given — fails when
the watchdog recorded any anomaly. CI runs this over the paper-bench
timeline artifacts so a saturated LR file or a wedged VCPU in a
Table II / Table V configuration fails the build.

Exit status: 0 when every file validates, 1 otherwise.
"""

import argparse
import json
import sys

REQUIRED_TOP = [
    "schema", "period_cycles", "frequency_ghz", "ticks",
    "dropped_samples", "series", "anomaly_count", "anomalies",
    "anomalies_dropped",
]
REQUIRED_SERIES = ["name", "track", "kind", "samples"]
REQUIRED_ANOMALY = ["rule", "begin_cycles", "end_cycles", "peak"]


def validate(path, allow_anomalies):
    errors = []
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or invalid JSON: {e}"]

    for key in REQUIRED_TOP:
        if key not in doc:
            errors.append(f"{path}: missing top-level key '{key}'")
    if errors:
        return errors

    if doc["schema"] != "virtsim-timeline-1":
        errors.append(f"{path}: unknown schema '{doc['schema']}'")
    if doc["period_cycles"] < 1:
        errors.append(f"{path}: non-positive period_cycles")

    names = set()
    for s in doc["series"]:
        for key in REQUIRED_SERIES:
            if key not in s:
                errors.append(f"{path}: series missing '{key}'")
                break
        else:
            name = s["name"]
            if name in names:
                errors.append(f"{path}: duplicate series '{name}'")
            names.add(name)
            if s["kind"] not in ("gauge", "rate"):
                errors.append(
                    f"{path}: series '{name}' has bad kind "
                    f"'{s['kind']}'")
            prev = -1
            for sample in s["samples"]:
                if (not isinstance(sample, list) or
                        len(sample) != 2):
                    errors.append(
                        f"{path}: series '{name}' has a malformed "
                        "sample")
                    break
                when = sample[0]
                if when < 0 or when < prev:
                    errors.append(
                        f"{path}: series '{name}' timestamps not "
                        "monotone non-negative")
                    break
                prev = when

    if doc["anomaly_count"] != len(doc["anomalies"]):
        errors.append(
            f"{path}: anomaly_count {doc['anomaly_count']} != "
            f"{len(doc['anomalies'])} records")
    for a in doc["anomalies"]:
        for key in REQUIRED_ANOMALY:
            if key not in a:
                errors.append(f"{path}: anomaly missing '{key}'")
                break

    if not allow_anomalies and doc["anomaly_count"] > 0:
        rules = sorted({a.get("rule", "?") for a in doc["anomalies"]})
        errors.append(
            f"{path}: watchdog recorded {doc['anomaly_count']} "
            f"anomalies (rules: {', '.join(rules)})")

    if not errors:
        nsamples = sum(len(s["samples"]) for s in doc["series"])
        print(f"{path}: OK ({len(doc['series'])} series, "
              f"{nsamples} samples, 0 anomalies)"
              if doc["anomaly_count"] == 0 else
              f"{path}: OK ({len(doc['series'])} series, "
              f"{nsamples} samples, "
              f"{doc['anomaly_count']} anomalies allowed)")
    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("files", nargs="+")
    ap.add_argument("--allow-anomalies", action="store_true",
                    help="validate the schema only; do not fail on "
                         "recorded watchdog anomalies")
    args = ap.parse_args()

    all_errors = []
    for path in args.files:
        all_errors.extend(validate(path, args.allow_anomalies))
    for e in all_errors:
        print(f"validate_timeline: {e}", file=sys.stderr)
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main())
