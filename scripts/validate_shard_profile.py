#!/usr/bin/env python3
"""Validate exported VIRTSIM_SHARD_PROFILE JSON files.

Usage: scripts/validate_shard_profile.py FILE [FILE...]

Checks each file against the "virtsim-shard-profile-2" schema:
required keys, sparse lane_detail rows (one per lane that ran or
stalled, ascending by lane id, all-zero lanes elided), internally
consistent wall/busy/wait accounting (busy + wait + stall never
exceeds lanes * wall beyond rounding), round counts, and well-formed
critical-channel records. CI runs this over the shard-profile
artifact the paper-bench job exports so a profiler regression (empty
lane table, negative wait, unsorted channels) fails the build.

The numbers themselves are host wall-clock and are NOT compared
against anything — only their shape and invariants are.

Exit status: 0 when every file validates, 1 otherwise.
"""

import argparse
import json
import sys

REQUIRED_TOP = [
    "schema", "lanes", "lanes_profiled", "rounds", "parallel_rounds",
    "wall_ns", "busy_ns_total", "speedup_estimate", "lane_detail",
    "critical_channels",
]
REQUIRED_LANE = [
    "lane", "busy_ns", "wait_ns", "stall_ns", "events",
    "stall_rounds",
]
REQUIRED_CHANNEL = ["dst", "src", "rounds", "channel"]


def validate(path):
    errors = []
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or invalid JSON: {e}"]

    for key in REQUIRED_TOP:
        if key not in doc:
            errors.append(f"{path}: missing top-level key '{key}'")
    if errors:
        return errors

    if doc["schema"] != "virtsim-shard-profile-2":
        errors.append(f"{path}: unknown schema '{doc['schema']}'")
    lanes = doc["lanes"]
    if lanes < 1:
        errors.append(f"{path}: profile covers no lanes")
    if doc["parallel_rounds"] > doc["rounds"]:
        errors.append(
            f"{path}: parallel_rounds {doc['parallel_rounds']} > "
            f"rounds {doc['rounds']}")
    if doc["speedup_estimate"] < 0:
        errors.append(f"{path}: negative speedup_estimate")

    detail = doc["lane_detail"]
    if len(detail) != doc["lanes_profiled"]:
        errors.append(
            f"{path}: lane_detail has {len(detail)} rows but "
            f"lanes_profiled is {doc['lanes_profiled']}")
    if len(detail) > lanes:
        errors.append(
            f"{path}: lane_detail has {len(detail)} rows for "
            f"{lanes} lanes")
    if doc["rounds"] > 0 and not detail:
        errors.append(
            f"{path}: {doc['rounds']} rounds ran but no lane ever "
            "ran or stalled")
    busy_total = 0
    prev_lane = -1
    for i, row in enumerate(detail):
        for key in REQUIRED_LANE:
            if key not in row:
                errors.append(f"{path}: lane row missing '{key}'")
                break
        else:
            if not 0 <= row["lane"] < lanes:
                errors.append(
                    f"{path}: lane_detail[{i}] names lane "
                    f"{row['lane']}, out of range")
            if row["lane"] <= prev_lane:
                errors.append(
                    f"{path}: lane_detail[{i}] is lane "
                    f"{row['lane']}; rows must ascend by lane id")
            prev_lane = row["lane"]
            for key in REQUIRED_LANE[1:]:
                if row[key] < 0:
                    errors.append(
                        f"{path}: lane {row['lane']} has negative "
                        f"{key}")
            # The schema elides all-zero lanes; a row of zeros means
            # the exporter's own filter broke.
            if (row["busy_ns"] == 0 and row["stall_ns"] == 0 and
                    row["events"] == 0 and row["stall_rounds"] == 0):
                errors.append(
                    f"{path}: lane {row['lane']} row is all-zero; "
                    "sparse lane_detail must elide it")
            # waitNs() is clamped at export: a lane can never account
            # for much more than the whole run's wall time (1% + 1 us
            # of slack absorbs per-round clock rounding).
            accounted = row["busy_ns"] + row["wait_ns"] + row["stall_ns"]
            if accounted > doc["wall_ns"] * 1.01 + 1000:
                errors.append(
                    f"{path}: lane {row['lane']} accounts "
                    f"{accounted} ns > wall {doc['wall_ns']} ns")
            if row["stall_rounds"] > doc["rounds"]:
                errors.append(
                    f"{path}: lane {row['lane']} stalled "
                    f"{row['stall_rounds']} rounds out of "
                    f"{doc['rounds']}")
            busy_total += row["busy_ns"]
    if busy_total != doc["busy_ns_total"]:
        errors.append(
            f"{path}: busy_ns_total {doc['busy_ns_total']} != "
            f"sum of lane busy_ns {busy_total}")

    prev_rounds = None
    for c in doc["critical_channels"]:
        for key in REQUIRED_CHANNEL:
            if key not in c:
                errors.append(
                    f"{path}: critical channel missing '{key}'")
                break
        else:
            if not (0 <= c["dst"] < lanes and 0 <= c["src"] < lanes):
                errors.append(
                    f"{path}: critical channel lane out of range: "
                    f"{c['src']} -> {c['dst']}")
            if c["rounds"] < 1:
                errors.append(
                    f"{path}: critical channel with zero rounds")
            if prev_rounds is not None and c["rounds"] > prev_rounds:
                errors.append(
                    f"{path}: critical_channels not sorted worst "
                    "first")
            prev_rounds = c["rounds"]

    if not errors:
        print(f"{path}: OK ({doc['lanes_profiled']}/{lanes} lanes "
              f"profiled, {doc['rounds']} rounds, "
              f"{doc['parallel_rounds']} parallel, speedup estimate "
              f"x{doc['speedup_estimate']:.2f})")
    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("files", nargs="+")
    args = ap.parse_args()

    all_errors = []
    for path in args.files:
        all_errors.extend(validate(path))
    for e in all_errors:
        print(f"validate_shard_profile: {e}", file=sys.stderr)
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main())
