#!/usr/bin/env python3
"""Validate exported VIRTSIM_INCIDENTS reports.

Usage: scripts/validate_incident.py FILE [FILE...]
       scripts/validate_incident.py --dir DIR [--min-incidents N]

Checks each file against the "virtsim-incident-1" schema and its
structural invariants:

  * the trigger instant lies inside the frozen window
    (window.begin_cycles <= trigger.at_cycles <= window.end_cycles);
  * the critical path is nonempty with consistent step intervals
    (t0 <= t1, every step inside the window) and span equal to the
    walk's extent;
  * every blame_diff row satisfies
    delta_cycles == incident_cycles - reference_cycles, and the rows
    sum to the reported incident/reference totals;
  * gauge samples are monotone in time and capped at window end;
  * latency phase stats are internally consistent
    (window_sum_cycles == 0 when window_count == 0).

CI runs this over the fleet overload incident artifacts so a report
that silently lost its forensic content (empty critical path, blame
that does not reconcile) fails the build.

Exit status: 0 when every file validates, 1 otherwise.
"""

import argparse
import json
import os
import sys

REQUIRED_TOP = [
    "schema", "world", "seq", "frequency_ghz", "window_us",
    "trigger", "window", "critical_path", "blame", "reference",
    "blame_diff", "gauges", "latency", "health",
]
REQUIRED_TRIGGER = ["at_cycles", "at_us", "sources"]
REQUIRED_WINDOW = [
    "begin_cycles", "begin_us", "end_cycles", "end_us", "clipped",
    "truncated", "records",
]
REQUIRED_STEP = ["name", "track", "t0", "t1", "edge"]
REQUIRED_DIFF_ROW = [
    "name", "incident_cycles", "reference_cycles", "delta_cycles",
]


def validate(path):
    errors = []
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or invalid JSON: {e}"]

    for key in REQUIRED_TOP:
        if key not in doc:
            errors.append(f"{path}: missing top-level key '{key}'")
    if errors:
        return errors

    if doc["schema"] != "virtsim-incident-1":
        errors.append(f"{path}: unknown schema '{doc['schema']}'")

    trig = doc["trigger"]
    for key in REQUIRED_TRIGGER:
        if key not in trig:
            errors.append(f"{path}: trigger missing '{key}'")
    win = doc["window"]
    for key in REQUIRED_WINDOW:
        if key not in win:
            errors.append(f"{path}: window missing '{key}'")
    if errors:
        return errors

    if not trig["sources"]:
        errors.append(f"{path}: trigger has no sources")
    if not (win["begin_cycles"] <= trig["at_cycles"]
            <= win["end_cycles"]):
        errors.append(
            f"{path}: trigger at {trig['at_cycles']} outside window "
            f"[{win['begin_cycles']}, {win['end_cycles']}]")

    crit = doc["critical_path"]
    steps = crit.get("steps", [])
    if not steps:
        errors.append(f"{path}: critical path is empty")
    lo, hi = None, None
    for st in steps:
        for key in REQUIRED_STEP:
            if key not in st:
                errors.append(
                    f"{path}: critical-path step missing '{key}'")
                break
        else:
            if st["t0"] > st["t1"]:
                errors.append(
                    f"{path}: critical-path step '{st['name']}' has "
                    f"t0 {st['t0']} > t1 {st['t1']}")
            if (st["t1"] < win["begin_cycles"] or
                    st["t0"] > win["end_cycles"]):
                errors.append(
                    f"{path}: critical-path step '{st['name']}' "
                    "outside the window")
            lo = st["t0"] if lo is None else min(lo, st["t0"])
            hi = st["t1"] if hi is None else max(hi, st["t1"])
    if steps and lo is not None and crit.get("span_cycles") != hi - lo:
        errors.append(
            f"{path}: critical-path span {crit.get('span_cycles')} "
            f"!= walk extent {hi - lo}")

    diff = doc["blame_diff"]
    inc_sum = 0
    ref_sum = 0
    for row in diff.get("rows", []):
        for key in REQUIRED_DIFF_ROW:
            if key not in row:
                errors.append(
                    f"{path}: blame_diff row missing '{key}'")
                break
        else:
            want = row["incident_cycles"] - row["reference_cycles"]
            if row["delta_cycles"] != want:
                errors.append(
                    f"{path}: blame_diff row '{row['name']}' delta "
                    f"{row['delta_cycles']} != {want}")
            inc_sum += row["incident_cycles"]
            ref_sum += row["reference_cycles"]
    if inc_sum != diff.get("incident_total_cycles"):
        errors.append(
            f"{path}: blame_diff incident rows sum to {inc_sum}, "
            f"total says {diff.get('incident_total_cycles')}")
    if ref_sum != diff.get("reference_total_cycles"):
        errors.append(
            f"{path}: blame_diff reference rows sum to {ref_sum}, "
            f"total says {diff.get('reference_total_cycles')}")

    for g in doc["gauges"]:
        prev = -1
        for sample in g.get("samples", []):
            if not isinstance(sample, list) or len(sample) != 2:
                errors.append(
                    f"{path}: gauge '{g.get('name')}' has a "
                    "malformed sample")
                break
            when = sample[0]
            if when < prev:
                errors.append(
                    f"{path}: gauge '{g.get('name')}' timestamps "
                    "not monotone")
                break
            if when > win["end_cycles"]:
                errors.append(
                    f"{path}: gauge '{g.get('name')}' sample past "
                    "window end")
                break
            prev = when

    for ph in doc["latency"].get("phases", []):
        if ph.get("window_count", 0) == 0 and \
                ph.get("window_sum_cycles", 0) != 0:
            errors.append(
                f"{path}: phase '{ph.get('phase')}' has cycles but "
                "no samples")

    if not errors:
        print(f"{path}: OK (trigger {', '.join(trig['sources'])}, "
              f"{win['records']} records, {len(steps)} critical-path "
              f"steps, {len(diff.get('rows', []))} blame-diff rows)")
    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("files", nargs="*")
    ap.add_argument("--dir", help="validate every incident.*.json "
                                  "under this directory")
    ap.add_argument("--min-incidents", type=int, default=0,
                    help="fail unless at least N incident files were "
                         "found (use with --dir)")
    args = ap.parse_args()

    files = list(args.files)
    if args.dir:
        try:
            files.extend(
                sorted(os.path.join(args.dir, f)
                       for f in os.listdir(args.dir)
                       if f.startswith("incident.") and
                       f.endswith(".json")))
        except OSError as e:
            print(f"validate_incident: {args.dir}: {e}",
                  file=sys.stderr)
            return 1
    if not files and not args.min_incidents:
        ap.error("no files given (pass FILE... or --dir DIR)")

    all_errors = []
    if len(files) < args.min_incidents:
        all_errors.append(
            f"expected >= {args.min_incidents} incident files, "
            f"found {len(files)}")
    for path in files:
        all_errors.extend(validate(path))
    for e in all_errors:
        print(f"validate_incident: {e}", file=sys.stderr)
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main())
